//! Fixed-width binary codec for edge records.
//!
//! The out-of-core spill format and the multi-process shard protocol both
//! serialize `(EdgeId, Edge)` pairs. One record is exactly
//! [`EDGE_RECORD_BYTES`] bytes, little-endian: `id: u64`, `u: u32`, `v: u32`,
//! `w: f64` (IEEE-754 bits). Storing the id explicitly keeps non-contiguous
//! shard layouts (round-robin partitions, filtered streams) loss-free, and
//! round-tripping the weight through its bit pattern keeps spilled passes
//! bit-identical to in-memory ones.

use std::io::{self, Read, Write};

use crate::graph::{Edge, EdgeId};

/// Size of one encoded `(EdgeId, Edge)` record in bytes.
pub const EDGE_RECORD_BYTES: usize = 24;

/// Upper bound on a single length-prefixed frame payload (256 MiB). A frame
/// larger than this is a protocol violation, not a legitimate message, so
/// readers reject it before allocating.
pub const MAX_FRAME_BYTES: usize = 1 << 28;

/// Writes one length-prefixed frame: `len: u32` (LE) followed by the payload.
///
/// Shared by the multi-process shard protocol (`mwm-external`), the session
/// image / write-ahead journal format (`mwm-persist`), and the socket front
/// door (`mwm-serve`), so all on-disk and on-wire framing stays identical.
///
/// Payloads over [`MAX_FRAME_BYTES`] are rejected with `InvalidInput`
/// *before* anything is written: the length prefix is a `u32`, so an
/// unchecked `len as u32` would silently truncate and the peer would then
/// misframe every subsequent byte of the stream. Since the cap is well
/// below `u32::MAX`, the check also makes the narrowing cast lossless.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload {} exceeds cap {MAX_FRAME_BYTES}", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one frame written by [`write_frame`].
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary; an EOF in the middle
/// of a frame is an error (`UnexpectedEof`), and a length prefix above
/// [`MAX_FRAME_BYTES`] is rejected as `InvalidData` before allocation.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut len_buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "eof inside frame length prefix",
            ));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {MAX_FRAME_BYTES}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Encodes one `(id, edge)` record into `buf`.
pub fn encode_edge_record(id: EdgeId, e: Edge, buf: &mut [u8; EDGE_RECORD_BYTES]) {
    buf[0..8].copy_from_slice(&(id as u64).to_le_bytes());
    buf[8..12].copy_from_slice(&e.u.to_le_bytes());
    buf[12..16].copy_from_slice(&e.v.to_le_bytes());
    buf[16..24].copy_from_slice(&e.w.to_bits().to_le_bytes());
}

/// Decodes one record written by [`encode_edge_record`].
pub fn decode_edge_record(buf: &[u8; EDGE_RECORD_BYTES]) -> (EdgeId, Edge) {
    let id = u64::from_le_bytes(buf[0..8].try_into().expect("8-byte slice")) as EdgeId;
    let u = u32::from_le_bytes(buf[8..12].try_into().expect("4-byte slice"));
    let v = u32::from_le_bytes(buf[12..16].try_into().expect("4-byte slice"));
    let w = f64::from_bits(u64::from_le_bytes(buf[16..24].try_into().expect("8-byte slice")));
    // Constructed literally: the codec must round-trip any bit pattern it is
    // handed, including weights `Edge::new`'s validity debug-assert rejects.
    (id, Edge { u, v, w })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip_bit_exactly() {
        for (id, u, v, w) in
            [(0usize, 0u32, 1u32, 1.0f64), (usize::MAX >> 1, 7, 3, 0.1 + 0.2), (42, 5, 5, -0.0)]
        {
            let mut buf = [0u8; EDGE_RECORD_BYTES];
            encode_edge_record(id, Edge { u, v, w }, &mut buf);
            let (id2, e2) = decode_edge_record(&buf);
            assert_eq!(id, id2);
            assert_eq!((e2.u, e2.v), (u, v));
            assert_eq!(e2.w.to_bits(), w.to_bits(), "weight bits must survive the codec");
        }
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"alpha").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"beta").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"alpha"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"beta"[..]));
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF ends the stream");

        let oversize = (MAX_FRAME_BYTES as u32 + 1).to_le_bytes();
        let err = read_frame(&mut &oversize[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        let torn = [5u8, 0, 0, 0, b'x'];
        let err = read_frame(&mut &torn[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "mid-frame EOF is an error");
    }

    #[test]
    fn write_frame_rejects_oversize_payload_before_writing() {
        // An unchecked `len as u32` would write a truncated header here and
        // desynchronize the peer; the writer must refuse instead.
        let oversize = vec![0u8; MAX_FRAME_BYTES + 1];
        let mut out = Vec::new();
        let err = write_frame(&mut out, &oversize).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(out.is_empty(), "nothing may reach the stream on rejection");

        // The cap itself is still a legal frame.
        let mut header_only = Vec::new();
        write_frame(&mut header_only, &[]).unwrap();
        assert_eq!(header_only, 0u32.to_le_bytes());
    }

    #[test]
    fn encoding_is_little_endian_and_stable() {
        let mut buf = [0u8; EDGE_RECORD_BYTES];
        encode_edge_record(1, Edge::new(2, 3, 1.0), &mut buf);
        assert_eq!(&buf[0..8], &[1, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(&buf[8..12], &[2, 0, 0, 0]);
        assert_eq!(&buf[12..16], &[3, 0, 0, 0]);
        assert_eq!(&buf[16..24], &1.0f64.to_bits().to_le_bytes());
    }
}
