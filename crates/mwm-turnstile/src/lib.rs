//! Turnstile ingestion for dynamic matching: per-weight-class linear sketch
//! banks.
//!
//! A journal replays every surviving update; under heavy deletion most of that
//! work cancels. This crate absorbs insert/delete/reweight updates into
//! *linear sketches* instead — a bank of AGM vertex sketches (connectivity)
//! plus one ℓ0-sampler per `(1+ε)^k` weight class (boundary samples) — so the
//! cost per update is `O(polylog)` cells touched and the resident state is a
//! pure function of the **live** edge multiset: a delete is the exact inverse
//! of its insert, and a reweight, fed as `(-old, +new)`, cancels to nothing in
//! the weight-oblivious forest bank.
//!
//! Linearity also buys deterministic sharding: cell updates are exact integer
//! and modular additions, so the bank of a stream equals the cell-wise sum of
//! the banks of any partition of the stream. The pass engine can ingest shards
//! on independent workers and [`SketchBank::merge`] them in shard order; the
//! result is bit-identical at every worker count.
//!
//! Weight classes reuse the solver's lattice construction
//! ([`FixedLattice::from_params`]) so that class assignment here is
//! bit-identical to `WeightLevels::level_of_bits` in the batch kernels.
//! Weights that rescale below the first boundary land in a dedicated
//! *underflow* sampler, so every live edge is held by exactly one class
//! sampler (plus the forest bank).
//!
//! On epoch commit, [`SketchBank::recover_candidates`] extracts a candidate
//! edge set: a Borůvka spanning forest peeled from the vertex-sketch copies,
//! plus every fingerprint-verified 1-sparse cell of the class samplers.
//! Recovery is randomized but seeded, and reads only bank state — so it too is
//! identical at every worker count.

use mwm_graph::{UnionFind, VertexId};
use mwm_lp::FixedLattice;
use mwm_sketch::graph_sketch::{decode_pair, encode_pair};
use mwm_sketch::{Decode, L0Sampler, OneSparse, SketchError, VertexSketch};

/// Parameters pinning a sketch bank's shape and randomness. Two banks are
/// mergeable exactly when every field matches.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TurnstileConfig {
    /// Vertex-id domain of the stream (edges must stay inside it).
    pub num_vertices: usize,
    /// Class ratio of the weight lattice (boundaries `(1+eps)^k`).
    pub eps: f64,
    /// Rescale factor applied before classification (the solver's `B/W*`; use
    /// `1.0` to classify raw weights).
    pub scale: f64,
    /// Largest scaled weight the class table must cover; heavier edges share
    /// the top class.
    pub max_scaled: f64,
    /// Independent vertex-sketch copies (Borůvka rounds available).
    pub forest_copies: usize,
    /// ℓ0-sampler repetitions per sketch (space/recovery-probability dial).
    pub reps: usize,
    /// Root seed; all bank randomness derives from it.
    pub seed: u64,
}

impl TurnstileConfig {
    /// A reasonable default shape for a stream over `n` vertices with raw
    /// weights in `(0, max_weight]`: `⌈log2 n⌉ + 2` forest copies (enough
    /// Borůvka rounds whp) at one repetition each.
    pub fn for_stream(n: usize, eps: f64, max_weight: f64, seed: u64) -> Self {
        let forest_copies = ((n.max(2) as f64).log2().ceil() as usize + 2).max(3);
        TurnstileConfig {
            num_vertices: n,
            eps,
            scale: 1.0,
            max_scaled: max_weight,
            forest_copies,
            reps: 1,
            seed,
        }
    }
}

/// One signed edge update in turnstile form. A reweight is two deltas:
/// `sign = -1` at the old weight followed by `sign = +1` at the new one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeDelta {
    /// One endpoint.
    pub u: VertexId,
    /// The other endpoint.
    pub v: VertexId,
    /// The edge weight as an IEEE-754 bit pattern (exact, orderable).
    pub weight_bits: u64,
    /// `+1` (insert) or `-1` (delete).
    pub sign: i64,
}

impl EdgeDelta {
    /// An insertion delta.
    pub fn insert(u: VertexId, v: VertexId, w: f64) -> Self {
        EdgeDelta { u, v, weight_bits: w.to_bits(), sign: 1 }
    }

    /// A deletion delta (must carry the same weight bits the insert did).
    pub fn delete(u: VertexId, v: VertexId, w: f64) -> Self {
        EdgeDelta { u, v, weight_bits: w.to_bits(), sign: -1 }
    }
}

/// The complete turnstile state: `forest_copies × n` AGM vertex sketches plus
/// one pair-domain ℓ0-sampler per weight class (and one for underflow).
#[derive(Clone, Debug)]
pub struct SketchBank {
    config: TurnstileConfig,
    lattice: FixedLattice,
    /// `forest_copies × n` vertex sketches, row-major by copy; copy `c` is
    /// seeded `seed + c` (the [`mwm_sketch::GraphSketcher`] convention).
    forest: Vec<VertexSketch>,
    /// One sampler per lattice class, plus the underflow sampler last.
    class_samplers: Vec<L0Sampler>,
    /// Net live-edge count per class sampler (exact, since deltas cancel).
    class_support: Vec<i64>,
}

/// Distinguishing offset for class-sampler seeds, so they never coincide with
/// a forest copy's seed.
const CLASS_SEED_OFFSET: u64 = 0xC1A5_5000_0000_0000;

fn words_per_cell() -> usize {
    5
}

impl SketchBank {
    /// An empty bank of the given shape.
    pub fn new(config: TurnstileConfig) -> Self {
        assert!(config.num_vertices >= 2, "turnstile streams need at least two vertices");
        assert!(config.forest_copies >= 1 && config.reps >= 1);
        let n = config.num_vertices;
        let lattice = FixedLattice::from_params(config.eps, config.scale, config.max_scaled);
        let mut forest = Vec::with_capacity(config.forest_copies * n);
        for c in 0..config.forest_copies {
            let copy_seed = config.seed.wrapping_add(c as u64);
            for _ in 0..n {
                forest.push(VertexSketch::with_reps(n, copy_seed, config.reps));
            }
        }
        let pair_domain = (n as u64 * (n as u64 - 1) / 2).max(1);
        let num_class_samplers = lattice.num_classes() + 1;
        let class_samplers = (0..num_class_samplers)
            .map(|k| {
                let class_seed = config.seed.wrapping_add(CLASS_SEED_OFFSET).wrapping_add(k as u64);
                L0Sampler::with_reps(pair_domain, class_seed, config.reps)
            })
            .collect();
        let class_support = vec![0i64; num_class_samplers];
        SketchBank { config, lattice, forest, class_samplers, class_support }
    }

    /// The configuration the bank was built with.
    pub fn config(&self) -> &TurnstileConfig {
        &self.config
    }

    /// Number of weight classes (excluding the underflow sampler).
    pub fn num_classes(&self) -> usize {
        self.lattice.num_classes()
    }

    /// Net live-edge count per class sampler (underflow last). Sums to the
    /// total number of live edges — every edge is held by exactly one class.
    pub fn class_support(&self) -> &[i64] {
        &self.class_support
    }

    /// Total live edges the bank currently holds.
    pub fn live_edges(&self) -> i64 {
        self.class_support.iter().sum()
    }

    /// True when every cell is identically zero (live edge multiset is empty).
    pub fn is_empty(&self) -> bool {
        self.forest.iter().all(|s| s.sampler().is_zero())
            && self.class_samplers.iter().all(|s| s.is_zero())
    }

    /// The class-sampler slot a weight belongs to (underflow slot for weights
    /// below the first boundary).
    fn class_slot(&self, weight_bits: u64) -> usize {
        self.lattice.class_of_key(weight_bits).unwrap_or(self.lattice.num_classes())
    }

    /// Absorbs one signed edge update into every sketch that covers it:
    /// `O(forest_copies · reps · log n)` cells touched, no allocation.
    pub fn apply_delta(&mut self, d: EdgeDelta) {
        assert!(d.sign == 1 || d.sign == -1, "turnstile deltas are unit-signed");
        let n = self.config.num_vertices;
        assert!(d.u != d.v, "self-loops cannot be matched or sketched");
        assert!((d.u as usize) < n && (d.v as usize) < n, "endpoint outside vertex domain");
        let (a, b) = if d.u < d.v { (d.u, d.v) } else { (d.v, d.u) };
        for c in 0..self.config.forest_copies {
            let base = c * n;
            if d.sign > 0 {
                self.forest[base + a as usize].add_edge(a, a, b);
                self.forest[base + b as usize].add_edge(b, a, b);
            } else {
                self.forest[base + a as usize].remove_edge(a, a, b);
                self.forest[base + b as usize].remove_edge(b, a, b);
            }
        }
        let slot = self.class_slot(d.weight_bits);
        let idx = encode_pair(n as u64, a as u64, b as u64);
        self.class_samplers[slot].update(idx, d.sign);
        self.class_support[slot] += d.sign;
        // One relaxed atomic add (one relaxed load when metrics are off);
        // a write-only tap, so ingestion stays bit-identical either way.
        mwm_obs::counter!("turnstile_deltas_total").inc();
    }

    /// Merges another bank into this one. By linearity the result is the bank
    /// of the concatenated streams; cell sums are exact, so merging is
    /// commutative and associative and sharded ingestion is bit-identical to
    /// sequential ingestion. Banks of different shape or randomness are not
    /// mergeable: the mismatch is a typed error and `self` stays untouched.
    pub fn merge(&mut self, other: &SketchBank) -> Result<(), SketchError> {
        let check = |field, left: u64, right: u64| {
            if left != right {
                Err(SketchError::Incompatible { field, left, right })
            } else {
                Ok(())
            }
        };
        check("num_vertices", self.config.num_vertices as u64, other.config.num_vertices as u64)?;
        check("eps", self.config.eps.to_bits(), other.config.eps.to_bits())?;
        check("scale", self.config.scale.to_bits(), other.config.scale.to_bits())?;
        check("max_scaled", self.config.max_scaled.to_bits(), other.config.max_scaled.to_bits())?;
        check(
            "forest_copies",
            self.config.forest_copies as u64,
            other.config.forest_copies as u64,
        )?;
        check("reps", self.config.reps as u64, other.config.reps as u64)?;
        check("seed", self.config.seed, other.config.seed)?;
        for (mine, theirs) in self.forest.iter_mut().zip(other.forest.iter()) {
            mine.merge(theirs)?;
        }
        for (mine, theirs) in self.class_samplers.iter_mut().zip(other.class_samplers.iter()) {
            mine.merge(theirs)?;
        }
        for (mine, theirs) in self.class_support.iter_mut().zip(other.class_support.iter()) {
            *mine += *theirs;
        }
        mwm_obs::counter!("turnstile_merges_total").inc();
        Ok(())
    }

    /// Merges the copy-`c` sketches of a component and samples one edge
    /// leaving it.
    fn sample_group_boundary(&self, c: usize, group: &[usize]) -> Option<(VertexId, VertexId)> {
        let n = self.config.num_vertices;
        let mut it = group.iter();
        let first = *it.next()?;
        let mut merged = self.forest[c * n + first].clone();
        for &v in it {
            merged.merge(&self.forest[c * n + v]).expect("one bank shares config");
        }
        merged.sample_boundary_edge().map(|e| (e.u, e.v))
    }

    /// Recovers a candidate edge set from the bank: a Borůvka spanning forest
    /// peeled from the vertex-sketch copies, plus every fingerprint-verified
    /// 1-sparse cell of the per-class samplers (each is an exact live support
    /// element). Sorted, deduplicated, normalized `u < v`. Deterministic given
    /// the bank state — hence identical at every ingestion worker count.
    pub fn recover_candidates(&self) -> Vec<(VertexId, VertexId)> {
        let n = self.config.num_vertices;
        let mut pairs: Vec<(VertexId, VertexId)> = Vec::new();
        let mut uf = UnionFind::new(n);
        for c in 0..self.config.forest_copies {
            if uf.num_components() == 1 {
                break;
            }
            let mut progressed = false;
            for group in uf.groups() {
                if let Some((u, v)) = self.sample_group_boundary(c, &group) {
                    if uf.union(u as usize, v as usize) {
                        pairs.push((u, v));
                        progressed = true;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        for sampler in &self.class_samplers {
            for cell in sampler.cells() {
                if let Decode::One(idx, _) = cell.decode() {
                    let (u, v) = decode_pair(n as u64, idx);
                    pairs.push((u as VertexId, v as VertexId));
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        mwm_obs::counter!("turnstile_recoveries_total").inc();
        mwm_obs::histogram!("turnstile_recovered_edges", &mwm_obs::SIZE_BOUNDS)
            .observe(pairs.len() as f64);
        pairs
    }

    /// Resident sketch-state bytes (the memory-per-session accounting the
    /// bench experiments report).
    pub fn resident_bytes(&self) -> usize {
        let cells: usize = self.forest.iter().map(|s| s.num_cells()).sum::<usize>()
            + self.class_samplers.iter().map(|s| s.num_cells()).sum::<usize>();
        cells * std::mem::size_of::<OneSparse>()
            + self.class_support.len() * std::mem::size_of::<i64>()
            + std::mem::size_of::<Self>()
    }

    /// Exports the complete bank state as plain vectors, for bit-exact
    /// hibernation. Cell traversal order is fixed (forest row-major by copy,
    /// then class samplers, underflow last; each cell as 5 little-endian-ready
    /// words: sum, weighted-lo, weighted-hi, fingerprint, base).
    pub fn to_state(&self) -> SketchBankState {
        let mut cell_words = Vec::new();
        for vs in &self.forest {
            push_sampler_words(&mut cell_words, vs.sampler());
        }
        for s in &self.class_samplers {
            push_sampler_words(&mut cell_words, s);
        }
        SketchBankState {
            num_vertices: self.config.num_vertices as u64,
            eps_bits: self.config.eps.to_bits(),
            scale_bits: self.config.scale.to_bits(),
            max_scaled_bits: self.config.max_scaled.to_bits(),
            forest_copies: self.config.forest_copies as u64,
            reps: self.config.reps as u64,
            seed: self.config.seed,
            class_support: self.class_support.clone(),
            cell_words,
        }
    }

    /// Rebuilds a bank from exported state, validating shape and seed-derived
    /// randomness cell by cell. `from_state(to_state())` is a bit-identical
    /// fixed point.
    pub fn from_state(state: &SketchBankState) -> Result<SketchBank, SketchError> {
        if state.num_vertices < 2 || state.forest_copies < 1 || state.reps < 1 {
            return Err(SketchError::InvalidState { what: "sketch bank shape out of range" });
        }
        let eps = f64::from_bits(state.eps_bits);
        let scale = f64::from_bits(state.scale_bits);
        let max_scaled = f64::from_bits(state.max_scaled_bits);
        if !(eps > 0.0 && eps < 1.0 && scale > 0.0 && scale.is_finite() && max_scaled.is_finite()) {
            return Err(SketchError::InvalidState {
                what: "sketch bank lattice parameters invalid",
            });
        }
        let config = TurnstileConfig {
            num_vertices: state.num_vertices as usize,
            eps,
            scale,
            max_scaled,
            forest_copies: state.forest_copies as usize,
            reps: state.reps as usize,
            seed: state.seed,
        };
        let mut bank = SketchBank::new(config);
        if state.class_support.len() != bank.class_support.len() {
            return Err(SketchError::InvalidState { what: "class support length mismatch" });
        }
        let mut cursor = 0usize;
        for vs in bank.forest.iter_mut() {
            let sampler = take_sampler(&state.cell_words, &mut cursor, vs.sampler())?;
            *vs = VertexSketch::from_raw(state.num_vertices, sampler)?;
        }
        for s in bank.class_samplers.iter_mut() {
            *s = take_sampler(&state.cell_words, &mut cursor, s)?;
        }
        if cursor != state.cell_words.len() {
            return Err(SketchError::InvalidState { what: "trailing words in sketch bank state" });
        }
        bank.class_support.copy_from_slice(&state.class_support);
        Ok(bank)
    }
}

/// On-demand publication of the bank's resident footprint (the delta,
/// merge and recovery counters record themselves as the bank is used).
impl mwm_obs::Observable for SketchBank {
    fn obs_scope(&self) -> &'static str {
        "turnstile"
    }

    fn publish_metrics(&self, registry: &mwm_obs::Registry) {
        registry.gauge("turnstile_resident_bytes").set(self.resident_bytes() as i64);
        registry.gauge("turnstile_classes").set(self.class_samplers.len() as i64);
    }
}

/// Exported bank state: shape parameters plus flat cell words, trivially
/// codable by the persistence layer.
#[derive(Clone, Debug, PartialEq)]
pub struct SketchBankState {
    /// Vertex-id domain.
    pub num_vertices: u64,
    /// Lattice `eps` as bits.
    pub eps_bits: u64,
    /// Lattice rescale factor as bits.
    pub scale_bits: u64,
    /// Lattice table ceiling as bits.
    pub max_scaled_bits: u64,
    /// Forest copies.
    pub forest_copies: u64,
    /// Sampler repetitions.
    pub reps: u64,
    /// Root seed.
    pub seed: u64,
    /// Per-class net live-edge counts (underflow last).
    pub class_support: Vec<i64>,
    /// Flat cell grid, 5 words per cell in fixed traversal order.
    pub cell_words: Vec<u64>,
}

fn push_sampler_words(words: &mut Vec<u64>, sampler: &L0Sampler) {
    for cell in sampler.cells() {
        let (sum, weighted, fingerprint, r) = cell.raw_parts();
        words.push(sum as u64);
        words.push(weighted as u64);
        words.push((weighted as u128 >> 64) as u64);
        words.push(fingerprint);
        words.push(r);
    }
}

fn take_sampler(
    words: &[u64],
    cursor: &mut usize,
    template: &L0Sampler,
) -> Result<L0Sampler, SketchError> {
    let count = template.num_cells();
    let need = count * words_per_cell();
    if words.len() - *cursor < need {
        return Err(SketchError::InvalidState { what: "sketch bank state truncated" });
    }
    let mut cells = Vec::with_capacity(count);
    for i in 0..count {
        let w = &words[*cursor + i * words_per_cell()..];
        let weighted = (((w[2] as u128) << 64) | w[1] as u128) as i128;
        cells.push(OneSparse::from_raw_parts(w[0] as i64, weighted, w[3], w[4])?);
    }
    *cursor += need;
    L0Sampler::from_raw(template.domain(), template.seed(), template.reps(), cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize) -> TurnstileConfig {
        TurnstileConfig::for_stream(n, 0.25, 64.0, 0xBEEF)
    }

    fn demo_deltas() -> Vec<EdgeDelta> {
        let mut deltas = Vec::new();
        for i in 0..14u32 {
            deltas.push(EdgeDelta::insert(i % 16, (i + 3) % 16, 1.0 + i as f64));
        }
        // Delete a third of them and reweight two.
        for i in (0..14u32).step_by(3) {
            deltas.push(EdgeDelta::delete(i % 16, (i + 3) % 16, 1.0 + i as f64));
        }
        deltas.push(EdgeDelta::delete(1, 4, 2.0));
        deltas.push(EdgeDelta::insert(1, 4, 40.0));
        deltas
    }

    #[test]
    fn bank_state_is_a_pure_function_of_the_live_multiset() {
        // +w1, -w1, +w2 must be bit-identical to +w2 alone: deletes and
        // reweights cancel exactly in every cell.
        let mut a = SketchBank::new(cfg(16));
        a.apply_delta(EdgeDelta::insert(2, 9, 3.5));
        a.apply_delta(EdgeDelta::delete(2, 9, 3.5));
        a.apply_delta(EdgeDelta::insert(2, 9, 17.0));
        let mut b = SketchBank::new(cfg(16));
        b.apply_delta(EdgeDelta::insert(2, 9, 17.0));
        assert_eq!(a.to_state(), b.to_state());
        assert_eq!(a.live_edges(), 1);

        // And full cancellation returns to the empty bank.
        a.apply_delta(EdgeDelta::delete(2, 9, 17.0));
        assert!(a.is_empty());
        assert_eq!(a.to_state(), SketchBank::new(cfg(16)).to_state());
    }

    #[test]
    fn sharded_ingestion_merges_bit_identical_to_sequential() {
        let deltas = demo_deltas();
        let mut sequential = SketchBank::new(cfg(16));
        for &d in &deltas {
            sequential.apply_delta(d);
        }
        for shards in [2usize, 3, 5] {
            let mut parts: Vec<SketchBank> =
                (0..shards).map(|_| SketchBank::new(cfg(16))).collect();
            for (i, &d) in deltas.iter().enumerate() {
                parts[i % shards].apply_delta(d);
            }
            let mut merged = parts.remove(0);
            for p in &parts {
                merged.merge(p).unwrap();
            }
            assert_eq!(merged.to_state(), sequential.to_state(), "shards={shards}");
        }
    }

    #[test]
    fn mismatched_banks_refuse_to_merge() {
        let mut a = SketchBank::new(cfg(16));
        a.apply_delta(EdgeDelta::insert(0, 1, 2.0));
        let snapshot = a.to_state();

        let b = SketchBank::new(TurnstileConfig { seed: 1, ..cfg(16) });
        assert_eq!(
            a.merge(&b),
            Err(SketchError::Incompatible { field: "seed", left: 0xBEEF, right: 1 })
        );
        let c = SketchBank::new(cfg(18));
        assert!(matches!(
            a.merge(&c),
            Err(SketchError::Incompatible { field: "num_vertices", .. })
        ));
        // Failed merges leave the receiver untouched.
        assert_eq!(a.to_state(), snapshot);
    }

    #[test]
    fn recovery_returns_live_edges_and_spans_components() {
        let mut bank = SketchBank::new(cfg(16));
        let mut live = std::collections::HashSet::new();
        // A path through the even vertices plus some extra chords.
        for i in 0..7u32 {
            bank.apply_delta(EdgeDelta::insert(2 * i, 2 * i + 2, 2.0 + i as f64));
            live.insert((2 * i, 2 * i + 2));
        }
        bank.apply_delta(EdgeDelta::insert(1, 3, 9.0));
        live.insert((1, 3));
        // Insert-then-delete noise that must not resurface.
        bank.apply_delta(EdgeDelta::insert(5, 7, 1.5));
        bank.apply_delta(EdgeDelta::delete(5, 7, 1.5));

        let candidates = bank.recover_candidates();
        assert!(!candidates.is_empty());
        for &(u, v) in &candidates {
            assert!(u < v, "candidates are normalized");
            assert!(live.contains(&(u, v)), "recovered a dead edge ({u},{v})");
        }
        // The forest bank must connect what the live graph connects.
        let mut uf = UnionFind::new(16);
        for &(u, v) in &candidates {
            uf.union(u as usize, v as usize);
        }
        let mut live_uf = UnionFind::new(16);
        for &(u, v) in &live {
            live_uf.union(u as usize, v as usize);
        }
        assert_eq!(uf.num_components(), live_uf.num_components());
    }

    #[test]
    fn state_round_trip_is_a_bit_identical_fixed_point() {
        let mut bank = SketchBank::new(cfg(16));
        for &d in &demo_deltas() {
            bank.apply_delta(d);
        }
        let state = bank.to_state();
        let revived = SketchBank::from_state(&state).unwrap();
        assert_eq!(revived.to_state(), state);
        assert_eq!(revived.recover_candidates(), bank.recover_candidates());
        assert_eq!(revived.class_support(), bank.class_support());

        // Corrupt state is rejected, not misread.
        let mut truncated = state.clone();
        truncated.cell_words.pop();
        assert!(SketchBank::from_state(&truncated).is_err());
        let mut reseeded = state.clone();
        reseeded.seed ^= 1;
        assert!(SketchBank::from_state(&reseeded).is_err());
    }

    #[test]
    fn class_assignment_matches_the_solver_lattice() {
        let bank = SketchBank::new(cfg(16));
        let lattice = FixedLattice::from_params(0.25, 1.0, 64.0);
        for w in [0.5f64, 1.0, 1.25, 2.0, 17.0, 63.9, 64.0] {
            let expect = lattice.class_of_key(w.to_bits()).unwrap_or(lattice.num_classes());
            assert_eq!(bank.class_slot(w.to_bits()), expect, "w={w}");
        }
        // Underflow weights land in the dedicated last sampler.
        assert_eq!(bank.class_slot(0.5f64.to_bits()), bank.num_classes());
    }
}
