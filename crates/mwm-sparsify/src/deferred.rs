//! Deferred cut sparsifiers (Definition 4, Lemma 17).
//!
//! The problem: we must *decide which edges to store* knowing only promise
//! values `ς_e` with `ς_e/χ ≤ u_e ≤ ς_e·χ`, and only afterwards are the true
//! weights `u_e` of the stored edges revealed. The paper's observation is that
//! running the standard importance-sampling construction on the `ς` values and
//! inflating every sampling probability by `χ²` guarantees that each edge is
//! stored with at least the probability the *true* weights would have demanded;
//! revealing the weights then yields a genuine `(1±ξ)` sparsifier of the
//! `u`-weighted graph.
//!
//! In the dual-primal algorithm the `u_e` are the exponential multipliers of
//! the covering solver: they change by a factor at most `(1+ε)` per oracle
//! call, so over `ε^{-1} ln γ` calls they stay within `γ` of the value at
//! sampling time — the sampling round sets `ς_e` to the current multiplier and
//! `χ = γ`, and the `ln γ` deferred sparsifiers of one round are *refined*
//! sequentially (Figure 1, right) without touching the input again.

use crate::benczur_karger::{sparsify_with_probability_floor, SparsifiedGraph, SparsifierConfig};
use mwm_graph::{Edge, EdgeId, Graph};

/// An edge stored by the deferred structure together with its inflated
/// sampling probability.
#[derive(Clone, Copy, Debug)]
pub struct PromisedEdge {
    /// Original edge id.
    pub id: EdgeId,
    /// Endpoints and original problem weight (NOT the multiplier).
    pub edge: Edge,
    /// Promise value `ς_e` used at sampling time.
    pub promise: f64,
    /// Probability with which the edge was stored (after `χ²` inflation).
    pub probability: f64,
}

/// The data structure `D` of Definition 4: a set of stored edge indices chosen
/// from promise values, which can later be turned into a weighted sparsifier
/// once the exact multiplier values of the stored edges are revealed.
#[derive(Clone, Debug)]
pub struct DeferredSparsifier {
    n: usize,
    stored: Vec<PromisedEdge>,
    chi: f64,
    xi: f64,
}

impl DeferredSparsifier {
    /// Builds the deferred structure.
    ///
    /// * `graph` — the underlying graph (supplies endpoints; its weights are
    ///   the matching weights, not the multipliers).
    /// * `promise` — `ς_e` per edge id (must be positive for edges that may
    ///   carry a nonzero multiplier; edges with `ς_e = 0` are never stored).
    /// * `chi` — the promise ratio `χ ≥ 1`.
    /// * `xi` — target cut accuracy of the final sparsifier.
    /// * `seed` — sampling randomness.
    pub fn build(graph: &Graph, promise: &[f64], chi: f64, xi: f64, seed: u64) -> Self {
        assert_eq!(promise.len(), graph.num_edges());
        assert!(chi >= 1.0 && xi > 0.0);
        // Build a promise-weighted view of the graph; edges with zero promise are
        // dropped entirely (they may not carry weight later per the promise).
        let mut promise_graph = Graph::with_capacities(graph.capacities().to_vec());
        let mut back_map = Vec::new();
        for (id, e) in graph.edge_iter() {
            if promise[id] > 0.0 {
                promise_graph.add_edge(e.u, e.v, promise[id]);
                back_map.push(id);
            }
        }
        // Oversample by chi^2: the probability computed from promise values is
        // inflated so it dominates the probability the true weights would need.
        let config = SparsifierConfig { xi, oversample: 6.0 * chi * chi, seed };
        let sampled = sparsify_with_probability_floor(&promise_graph, &config, |_| 0.0);
        let base_rate = 6.0 * chi * chi * (graph.num_vertices().max(2) as f64).ln() / (xi * xi);
        let stored = sampled
            .edges
            .iter()
            .map(|&(local_id, e, sparsifier_weight)| {
                let id = back_map[local_id];
                // Recover the probability from the reweighting: w' = w / p.
                let p =
                    if sparsifier_weight > 0.0 { (e.w / sparsifier_weight).min(1.0) } else { 1.0 };
                // Guard against degenerate rounding.
                let p = if p <= 0.0 { (base_rate).min(1.0) } else { p };
                PromisedEdge { id, edge: graph.edge(id), promise: e.w, probability: p }
            })
            .collect();
        DeferredSparsifier { n: graph.num_vertices(), stored, chi, xi }
    }

    /// Number of stored edge indices (`n˜_s` of Definition 4).
    pub fn num_stored(&self) -> usize {
        self.stored.len()
    }

    /// The stored edges.
    pub fn stored_edges(&self) -> &[PromisedEdge] {
        &self.stored
    }

    /// The promise ratio χ the structure was built with.
    pub fn chi(&self) -> f64 {
        self.chi
    }

    /// The cut accuracy ξ the structure was built with.
    pub fn xi(&self) -> f64 {
        self.xi
    }

    /// Reveals the true multiplier values and produces the weighted sparsifier
    /// `u^s`: stored edge `e` receives value `u_e / p_e`, all other edges 0.
    ///
    /// `reveal(id)` must return the *current* multiplier `u_e` of edge `id`; it
    /// is only invoked for stored edges (that is the whole point of deferral).
    pub fn reveal(&self, mut reveal: impl FnMut(EdgeId) -> f64) -> SparsifiedGraph {
        let edges = self
            .stored
            .iter()
            .filter_map(|pe| {
                let u = reveal(pe.id);
                if u <= 0.0 {
                    None
                } else {
                    Some((pe.id, Edge::new(pe.edge.u, pe.edge.v, u), u / pe.probability))
                }
            })
            .collect();
        SparsifiedGraph { n: self.n, edges }
    }

    /// Checks the promise `ς/χ ≤ u ≤ ς·χ` for the stored edges against the
    /// revealed values; returns the ids of violating edges (diagnostics).
    pub fn promise_violations(&self, mut reveal: impl FnMut(EdgeId) -> f64) -> Vec<EdgeId> {
        self.stored
            .iter()
            .filter_map(|pe| {
                let u = reveal(pe.id);
                if u <= 0.0 {
                    return None;
                }
                let lo = pe.promise / self.chi - 1e-12;
                let hi = pe.promise * self.chi + 1e-12;
                if u < lo || u > hi {
                    Some(pe.id)
                } else {
                    None
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::cut_quality_report;
    use mwm_graph::generators::{self, WeightModel};
    use rand::prelude::*;
    use rand::rngs::StdRng;

    /// Builds a multiplier-weighted graph to compare cuts against.
    fn multiplier_graph(g: &Graph, u: &[f64]) -> Graph {
        let mut mg = Graph::new(g.num_vertices());
        for (id, e) in g.edge_iter() {
            if u[id] > 0.0 {
                mg.add_edge(e.u, e.v, u[id]);
            }
        }
        mg
    }

    #[test]
    fn exact_promise_behaves_like_plain_sparsifier() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::gnp(70, 0.4, WeightModel::Unit, &mut rng);
        let u: Vec<f64> = (0..g.num_edges()).map(|_| rng.gen_range(0.5..2.0)).collect();
        let d = DeferredSparsifier::build(&g, &u, 1.0, 0.2, 7);
        let s = d.reveal(|id| u[id]);
        let mg = multiplier_graph(&g, &u);
        let report = cut_quality_report(&mg, &s, 30, 3);
        assert!(report.max_relative_error < 0.45, "report {report:?}");
        assert!(d.promise_violations(|id| u[id]).is_empty());
    }

    #[test]
    fn perturbed_weights_within_chi_still_good() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::gnp(70, 0.4, WeightModel::Unit, &mut rng);
        let promise: Vec<f64> = (0..g.num_edges()).map(|_| rng.gen_range(0.5..2.0)).collect();
        let chi = 1.5;
        // True multipliers drift within the promise band.
        let actual: Vec<f64> = promise.iter().map(|&s| s * rng.gen_range(1.0 / chi..chi)).collect();
        let d = DeferredSparsifier::build(&g, &promise, chi, 0.2, 11);
        assert!(d.promise_violations(|id| actual[id]).is_empty());
        let s = d.reveal(|id| actual[id]);
        let mg = multiplier_graph(&g, &actual);
        let report = cut_quality_report(&mg, &s, 30, 5);
        assert!(report.max_relative_error < 0.5, "report {report:?}");
    }

    #[test]
    fn zero_promise_edges_never_stored() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::gnm(40, 200, WeightModel::Unit, &mut rng);
        let mut promise = vec![0.0; g.num_edges()];
        let half = g.num_edges() / 2;
        for p in promise.iter_mut().take(half) {
            *p = 1.0;
        }
        let d = DeferredSparsifier::build(&g, &promise, 2.0, 0.3, 13);
        for pe in d.stored_edges() {
            assert!(pe.id < g.num_edges() / 2, "edge with zero promise was stored");
        }
    }

    #[test]
    fn larger_chi_stores_more_edges() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::complete(80, WeightModel::Unit, &mut rng);
        let promise: Vec<f64> = vec![1.0; g.num_edges()];
        let small = DeferredSparsifier::build(&g, &promise, 1.0, 0.3, 17);
        let large = DeferredSparsifier::build(&g, &promise, 3.0, 0.3, 17);
        assert!(
            large.num_stored() >= small.num_stored(),
            "chi=3 stored {} < chi=1 stored {}",
            large.num_stored(),
            small.num_stored()
        );
    }

    #[test]
    fn reveal_drops_zeroed_multipliers() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::gnm(30, 100, WeightModel::Unit, &mut rng);
        let promise = vec![1.0; g.num_edges()];
        let d = DeferredSparsifier::build(&g, &promise, 2.0, 0.3, 19);
        let s = d.reveal(|_| 0.0);
        assert_eq!(s.num_edges(), 0);
    }

    #[test]
    fn violations_detected() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = generators::gnm(20, 60, WeightModel::Unit, &mut rng);
        let promise = vec![1.0; g.num_edges()];
        let d = DeferredSparsifier::build(&g, &promise, 1.2, 0.3, 23);
        if d.num_stored() > 0 {
            let bad = d.promise_violations(|_| 100.0);
            assert_eq!(bad.len(), d.num_stored());
        }
    }
}
