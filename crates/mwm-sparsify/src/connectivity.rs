//! Edge-connectivity (strength) estimates via Nagamochi–Ibaraki forest
//! decompositions.
//!
//! The sparsification survey cited by the paper (Fung et al.) shows that
//! sampling each edge with probability inversely proportional to *any* of
//! several connectivity-like quantities yields a cut sparsifier; the classical
//! and cheapest such quantity is the index of the Nagamochi–Ibaraki forest an
//! edge falls into: partition `E` into forests `F_1, F_2, …` where `F_j` is a
//! spanning forest of `E ∖ (F_1 ∪ … ∪ F_{j-1})`. If an edge lands in forest
//! `F_j` then its endpoints are at least `j`-edge-connected in `F_1 ∪ … ∪ F_j`,
//! so `j` is a valid lower bound on the edge's connectivity.

use mwm_graph::{Graph, UnionFind};

/// Computes the Nagamochi–Ibaraki forest index of every edge.
///
/// Returns `forest_index[e] ∈ {1, 2, …}` for every edge id `e`. Larger index =
/// better connected = safe to sample more aggressively.
pub fn forest_decomposition(graph: &Graph) -> Vec<usize> {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    let mut index = vec![0usize; m];
    // Lazily grown list of union-find structures, one per forest.
    let mut forests: Vec<UnionFind> = Vec::new();
    for (id, e) in graph.edge_iter() {
        let (u, v) = (e.u as usize, e.v as usize);
        // Find the first forest in which u and v are not yet connected.
        let mut placed = false;
        for (j, uf) in forests.iter_mut().enumerate() {
            if !uf.connected(u, v) {
                uf.union(u, v);
                index[id] = j + 1;
                placed = true;
                break;
            }
        }
        if !placed {
            let mut uf = UnionFind::new(n);
            uf.union(u, v);
            forests.push(uf);
            index[id] = forests.len();
        }
    }
    index
}

/// Computes forest indices restricted to an arbitrary subset of edges given as
/// `(edge_id, u, v)` triples; ids index the returned map positionally.
pub fn forest_decomposition_of_edges(n: usize, edges: &[(usize, u32, u32)]) -> Vec<usize> {
    let mut index = vec![0usize; edges.len()];
    let mut forests: Vec<UnionFind> = Vec::new();
    for (pos, &(_, u, v)) in edges.iter().enumerate() {
        let (u, v) = (u as usize, v as usize);
        let mut placed = false;
        for (j, uf) in forests.iter_mut().enumerate() {
            if !uf.connected(u, v) {
                uf.union(u, v);
                index[pos] = j + 1;
                placed = true;
                break;
            }
        }
        if !placed {
            let mut uf = UnionFind::new(n);
            uf.union(u, v);
            forests.push(uf);
            index[pos] = forests.len();
        }
    }
    index
}

/// Exact minimum cut separating the two endpoints of each edge would be
/// expensive; this helper instead reports the *maximum* forest index, which is
/// a useful summary statistic (≈ graph density) for the experiments.
pub fn max_forest_index(graph: &Graph) -> usize {
    forest_decomposition(graph).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwm_graph::generators::{self, WeightModel};
    use rand::prelude::*;

    #[test]
    fn tree_edges_all_in_first_forest() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::path(20, WeightModel::Unit, &mut rng);
        let idx = forest_decomposition(&g);
        assert!(idx.iter().all(|&i| i == 1));
    }

    #[test]
    fn parallel_structure_raises_index() {
        // Two triangles sharing all vertices => some edge must land in forest 2.
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(0, 2, 1.0);
        let idx = forest_decomposition(&g);
        assert_eq!(idx.iter().filter(|&&i| i == 1).count(), 2);
        assert_eq!(idx.iter().filter(|&&i| i == 2).count(), 1);
    }

    #[test]
    fn complete_graph_has_high_indices() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::complete(12, WeightModel::Unit, &mut rng);
        let max = max_forest_index(&g);
        // K_12 has 66 edges and only 11 can fit per forest.
        assert!(max >= 6, "max forest index {max} too small for K_12");
    }

    #[test]
    fn forest_index_at_most_degree() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = generators::gnm(40, 200, WeightModel::Unit, &mut rng);
        g.ensure_adjacency();
        let idx = forest_decomposition(&g);
        for (id, e) in g.edge_iter() {
            let d = g.degree(e.u).min(g.degree(e.v));
            assert!(idx[id] <= d, "forest index cannot exceed the min endpoint degree");
        }
    }

    #[test]
    fn edge_subset_variant_matches_full_graph_on_all_edges() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::gnm(25, 80, WeightModel::Unit, &mut rng);
        let full = forest_decomposition(&g);
        let triples: Vec<(usize, u32, u32)> = g.edge_iter().map(|(id, e)| (id, e.u, e.v)).collect();
        let subset = forest_decomposition_of_edges(g.num_vertices(), &triples);
        assert_eq!(full, subset);
    }
}
