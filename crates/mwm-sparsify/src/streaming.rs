//! The semi-streaming sparsifier construction of Algorithm 6.
//!
//! One pass over the edge list. Conceptually `G_0 = G` and `G_i` keeps each
//! edge of `G_{i-1}` with probability 1/2 (implemented by hashing the edge to
//! a geometric level). For every level `i` we maintain `k` union-find
//! structures `UF^i_1 … UF^i_k`; an arriving edge is inserted into the first
//! forest in which its endpoints are not yet connected. At the end, an edge of
//! forest `F^·_j`, `j < k`, is written to the sparsifier with weight
//! `w_e · 2^{i'}` where `i'` is the smallest level whose *k-th* union-find
//! still separates its endpoints — i.e. the level at which the edge's local
//! connectivity drops below `k`, which is exactly the inverse sampling rate.

use crate::benczur_karger::SparsifiedGraph;
use mwm_graph::{Edge, EdgeId, Graph, UnionFind};
use mwm_sketch::hashing::PairwiseHash;

/// Per-level state: `k` union-find structures and the edges retained in forests.
struct LevelState {
    forests: Vec<UnionFind>,
    /// Edges kept at this level: (edge id, edge, forest index j).
    kept: Vec<(EdgeId, Edge, usize)>,
}

/// Runs Algorithm 6 in a single pass over `graph.edges()`.
///
/// * `k` — number of forests per level (`O(ξ^{-2} log² n)` in the paper).
/// * `seed` — randomness for the geometric subsampling.
pub fn streaming_sparsify(graph: &Graph, k: usize, seed: u64) -> SparsifiedGraph {
    assert!(k >= 1);
    let n = graph.num_vertices();
    let m = graph.num_edges();
    if m == 0 {
        return SparsifiedGraph { n, edges: Vec::new() };
    }
    let num_levels = ((m as f64).log2().ceil() as usize + 1).max(1);
    let hash = PairwiseHash::new(seed, 0);
    let mut levels: Vec<LevelState> =
        (0..num_levels).map(|_| LevelState { forests: Vec::new(), kept: Vec::new() }).collect();

    // Single pass over the stream.
    for (id, e) in graph.edge_iter() {
        // The edge survives to levels 0..=lvl where lvl is geometric.
        let lvl = (hash.level(id as u64) as usize).min(num_levels - 1);
        for state in levels.iter_mut().take(lvl + 1) {
            // Insert into the first forest where endpoints are unconnected.
            let mut placed = false;
            for (j, uf) in state.forests.iter_mut().enumerate() {
                if !uf.connected(e.u as usize, e.v as usize) {
                    uf.union(e.u as usize, e.v as usize);
                    if j < k {
                        state.kept.push((id, e, j));
                    }
                    placed = true;
                    break;
                }
            }
            if !placed && state.forests.len() < k {
                let mut uf = UnionFind::new(n);
                uf.union(e.u as usize, e.v as usize);
                state.kept.push((id, e, state.forests.len()));
                state.forests.push(uf);
            } else if !placed {
                // All k forests already connect the endpoints: edge is dropped at
                // this level (it is k-connected here, sampling handles it deeper).
            }
        }
    }

    // Post-processing: each edge kept at level 0 forests is emitted once with
    // weight w_e * 2^{i'} where i' is the smallest level at which the k-th
    // union-find does NOT connect its endpoints (i.e. the edge's connectivity
    // falls below k); edges that are k-connected at every level they reached
    // are dropped, matching the sampling rate 2^{-i'}.
    // Determinism audit (PR 4): this used to be a `HashSet`. Insert-only
    // dedup never observes iteration order, but an id-indexed bitmap is both
    // obviously order-free and cheaper on the hot path; the remaining hash
    // containers in mwm-sparsify/mwm-sketch live in `#[cfg(test)]` code.
    let mut out = Vec::new();
    let mut emitted = vec![false; m];
    for state in &levels {
        for &(id, e, _) in &state.kept {
            if std::mem::replace(&mut emitted[id], true) {
                continue;
            }
            // Find smallest level i' where the endpoints are separated in the
            // last (k-th) forest, i.e. local connectivity < k.
            let mut i_prime = None;
            for (i, lvl_state) in levels.iter().enumerate() {
                let separated = match lvl_state.forests.last() {
                    None => true,
                    Some(uf) => uf.find_immutable(e.u as usize) != uf.find_immutable(e.v as usize),
                } || lvl_state.forests.len() < k;
                if separated {
                    i_prime = Some(i);
                    break;
                }
            }
            if let Some(i) = i_prime {
                out.push((id, e, e.w * (1u64 << i.min(62)) as f64));
            }
        }
    }
    SparsifiedGraph { n, edges: out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::cut_quality_report;
    use mwm_graph::generators::{self, WeightModel};
    use rand::prelude::*;

    #[test]
    fn connectivity_is_preserved() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::gnm(60, 400, WeightModel::Unit, &mut rng);
        let s = streaming_sparsify(&g, 8, 3);
        let sg = s.to_support_graph();
        let (_, c_orig) = g.connected_components();
        let (_, c_sparse) = sg.connected_components();
        assert_eq!(c_orig, c_sparse, "sparsifier must preserve connectivity (forest 1 is kept)");
    }

    #[test]
    fn sparse_graphs_pass_through() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::path(40, WeightModel::Uniform(1.0, 2.0), &mut rng);
        let s = streaming_sparsify(&g, 4, 7);
        assert_eq!(s.num_edges(), g.num_edges());
        // Path edges are 1-connected: they are never subsampled, weight unchanged.
        for &(_, e, w) in &s.edges {
            assert!((w - e.w).abs() < 1e-12);
        }
    }

    #[test]
    fn dense_graph_is_compressed() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::complete(100, WeightModel::Unit, &mut rng);
        let s = streaming_sparsify(&g, 30, 11);
        assert!(
            s.num_edges() < g.num_edges(),
            "K_100 with k=30 should drop some edges: kept {} of {}",
            s.num_edges(),
            g.num_edges()
        );
    }

    #[test]
    fn cuts_roughly_preserved_with_large_k() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::gnp(80, 0.4, WeightModel::Unit, &mut rng);
        let s = streaming_sparsify(&g, 60, 13);
        let report = cut_quality_report(&g, &s, 40, 5);
        assert!(report.max_relative_error < 0.5, "cut error too large: {report:?}");
    }

    #[test]
    fn empty_graph_handled() {
        let g = Graph::new(5);
        let s = streaming_sparsify(&g, 4, 1);
        assert_eq!(s.num_edges(), 0);
    }
}
