//! Offline weighted cut sparsification by importance sampling
//! (Benczúr–Karger / Fung et al., as used in the proof of Lemma 17).
//!
//! Each edge is sampled with probability inversely proportional to a
//! connectivity estimate of its endpoints (its Nagamochi–Ibaraki forest
//! index), computed separately for every geometric weight class
//! `[2^ℓ, 2^{ℓ+1})`, and kept edges are reweighted by `w_e / p_e` so that
//! every cut is preserved in expectation. The union of per-class sparsifiers
//! is a sparsifier of the union (the "sum of sparsifiers" observation in the
//! proof of Lemma 17).

use crate::connectivity::forest_decomposition_of_edges;
use mwm_graph::{Edge, EdgeId, Graph};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Tuning knobs of the sparsifier.
#[derive(Clone, Copy, Debug)]
pub struct SparsifierConfig {
    /// Target cut accuracy `ξ` (relative error of every cut).
    pub xi: f64,
    /// Oversampling constant `C` in the probability `min(1, C·ln n / (ξ²·k_e))`.
    pub oversample: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SparsifierConfig {
    fn default() -> Self {
        SparsifierConfig { xi: 0.1, oversample: 6.0, seed: 0xC0FFEE }
    }
}

/// A sparsified graph: a subset of the original edges with new weights, plus
/// bookkeeping about which original edge each kept edge came from.
#[derive(Clone, Debug)]
pub struct SparsifiedGraph {
    /// Number of vertices (same vertex set as the original graph).
    pub n: usize,
    /// Kept edges: `(original_edge_id, endpoints/original weight, sparsifier weight)`.
    pub edges: Vec<(EdgeId, Edge, f64)>,
}

impl SparsifiedGraph {
    /// Number of kept edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Materializes the sparsifier as a [`Graph`] carrying the *sparsifier* weights.
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::new(self.n);
        for &(_, e, w) in &self.edges {
            g.add_edge(e.u, e.v, w);
        }
        g
    }

    /// Materializes the subgraph of kept edges carrying their *original* weights.
    pub fn to_support_graph(&self) -> Graph {
        let mut g = Graph::new(self.n);
        for &(_, e, _) in &self.edges {
            g.add_edge(e.u, e.v, e.w);
        }
        g
    }

    /// Value of a cut in the sparsifier (using sparsifier weights).
    pub fn cut_value(&self, in_u: &[bool]) -> f64 {
        self.edges
            .iter()
            .filter(|(_, e, _)| in_u[e.u as usize] != in_u[e.v as usize])
            .map(|&(_, _, w)| w)
            .sum()
    }

    /// Ids of the original edges retained by the sparsifier.
    pub fn kept_edge_ids(&self) -> Vec<EdgeId> {
        self.edges.iter().map(|&(id, _, _)| id).collect()
    }
}

/// Builds a `(1±ξ)` cut sparsifier of `graph`.
pub fn sparsify(graph: &Graph, config: &SparsifierConfig) -> SparsifiedGraph {
    sparsify_with_probability_floor(graph, config, |_| 0.0)
}

/// Builds a sparsifier while forcing the sampling probability of edge `e` to be
/// at least `floor(e)`. The deferred construction of Lemma 17 uses this to
/// oversample by the promise ratio `χ²`.
pub fn sparsify_with_probability_floor(
    graph: &Graph,
    config: &SparsifierConfig,
    floor: impl Fn(EdgeId) -> f64,
) -> SparsifiedGraph {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    let mut rng = StdRng::seed_from_u64(config.seed);
    if m == 0 {
        return SparsifiedGraph { n, edges: Vec::new() };
    }
    let ln_n = (n.max(2) as f64).ln();
    let base_rate = config.oversample * ln_n / (config.xi * config.xi);

    // Group edges into geometric weight classes [2^l, 2^{l+1}).
    let mut classes: std::collections::BTreeMap<i32, Vec<(EdgeId, Edge)>> =
        std::collections::BTreeMap::new();
    for (id, e) in graph.edge_iter() {
        let class = e.w.log2().floor() as i32;
        classes.entry(class).or_default().push((id, e));
    }

    let mut kept = Vec::new();
    for (_, class_edges) in classes {
        // Connectivity estimates within the class (unweighted).
        let triples: Vec<(usize, u32, u32)> =
            class_edges.iter().map(|&(id, e)| (id, e.u, e.v)).collect();
        let ks = forest_decomposition_of_edges(n, &triples);
        for (pos, &(id, e)) in class_edges.iter().enumerate() {
            let k_e = ks[pos].max(1) as f64;
            let p = (base_rate / k_e).min(1.0).max(floor(id).min(1.0));
            if p >= 1.0 || rng.gen_bool(p) {
                kept.push((id, e, e.w / p));
            }
        }
    }
    SparsifiedGraph { n, edges: kept }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::cut_quality_report;
    use mwm_graph::generators::{self, WeightModel};

    #[test]
    fn sparse_graph_is_kept_entirely() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::path(50, WeightModel::Uniform(1.0, 4.0), &mut rng);
        let s = sparsify(&g, &SparsifierConfig::default());
        // Trees have connectivity 1 per edge; probability is 1 → nothing dropped.
        assert_eq!(s.num_edges(), g.num_edges());
        for &(_, e, w) in &s.edges {
            assert!((w - e.w).abs() < 1e-12);
        }
    }

    #[test]
    fn dense_graph_is_compressed() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::complete(120, WeightModel::Unit, &mut rng);
        let s = sparsify(&g, &SparsifierConfig { xi: 0.5, oversample: 0.5, seed: 9 });
        assert!(
            s.num_edges() < g.num_edges() * 2 / 3,
            "K_120 should compress: kept {} of {}",
            s.num_edges(),
            g.num_edges()
        );
    }

    #[test]
    fn degree_cuts_preserved_on_dense_graph() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::gnp(100, 0.4, WeightModel::Unit, &mut rng);
        let s = sparsify(&g, &SparsifierConfig { xi: 0.15, oversample: 8.0, seed: 3 });
        let report = cut_quality_report(&g, &s, 50, 11);
        assert!(report.max_relative_error < 0.35, "cut error too large: {:?}", report);
    }

    #[test]
    fn probability_floor_forces_inclusion() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::complete(60, WeightModel::Unit, &mut rng);
        let all = sparsify_with_probability_floor(
            &g,
            &SparsifierConfig { xi: 0.3, oversample: 1.0, seed: 5 },
            |_| 1.0,
        );
        assert_eq!(all.num_edges(), g.num_edges());
    }

    #[test]
    fn expected_total_weight_is_preserved() {
        // Reweighting by 1/p keeps the total weight right in expectation; check
        // it is within a loose factor on one draw.
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::gnp(90, 0.5, WeightModel::Unit, &mut rng);
        let s = sparsify(&g, &SparsifierConfig { xi: 0.2, oversample: 6.0, seed: 17 });
        let total_s: f64 = s.edges.iter().map(|&(_, _, w)| w).sum();
        let total_g = g.total_weight();
        assert!((total_s - total_g).abs() / total_g < 0.25, "{total_s} vs {total_g}");
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(10);
        let s = sparsify(&g, &SparsifierConfig::default());
        assert_eq!(s.num_edges(), 0);
        assert_eq!(s.to_graph().num_vertices(), 10);
    }
}
