//! Measurement utilities for sparsifier quality (experiment E6).
//!
//! A sparsifier promises `(1±ξ)` preservation of *every* cut; checking all
//! `2^n` cuts is impossible, so the report measures (a) all `n` degree cuts —
//! the cuts actually used by Lemma 18's `Switch` argument — and (b) a batch of
//! uniformly random cuts.

use crate::benczur_karger::SparsifiedGraph;
use mwm_graph::Graph;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Summary of the observed cut approximation quality.
#[derive(Clone, Debug)]
pub struct CutQualityReport {
    /// Number of cuts evaluated.
    pub cuts_checked: usize,
    /// Maximum relative error `|cut_H - cut_G| / cut_G` over non-empty cuts.
    pub max_relative_error: f64,
    /// Mean relative error.
    pub mean_relative_error: f64,
    /// Compression ratio `|E_H| / |E_G|`.
    pub compression: f64,
}

/// Compares `sparsifier` against `graph` on all degree cuts plus `num_random`
/// random cuts drawn with the given seed.
pub fn cut_quality_report(
    graph: &Graph,
    sparsifier: &SparsifiedGraph,
    num_random: usize,
    seed: u64,
) -> CutQualityReport {
    let n = graph.num_vertices();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut errors: Vec<f64> = Vec::new();

    let mut eval = |in_u: &[bool]| {
        let orig = graph.cut_value(in_u);
        if orig <= 0.0 {
            return;
        }
        let sp = sparsifier.cut_value(in_u);
        errors.push((sp - orig).abs() / orig);
    };

    // Degree cuts.
    for v in 0..n {
        let mut in_u = vec![false; n];
        in_u[v] = true;
        eval(&in_u);
    }
    // Random cuts.
    for _ in 0..num_random {
        let in_u: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        eval(&in_u);
    }

    let cuts_checked = errors.len();
    let max_relative_error = errors.iter().copied().fold(0.0f64, f64::max);
    let mean_relative_error =
        if errors.is_empty() { 0.0 } else { errors.iter().sum::<f64>() / errors.len() as f64 };
    let compression = if graph.num_edges() == 0 {
        0.0
    } else {
        sparsifier.num_edges() as f64 / graph.num_edges() as f64
    };
    CutQualityReport { cuts_checked, max_relative_error, mean_relative_error, compression }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benczur_karger::{sparsify, SparsifierConfig};
    use mwm_graph::generators::{self, WeightModel};

    #[test]
    fn identity_sparsifier_has_zero_error() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::gnm(30, 100, WeightModel::Uniform(1.0, 3.0), &mut rng);
        // xi huge + oversample huge → probability 1 for every edge.
        let s = sparsify(&g, &SparsifierConfig { xi: 0.01, oversample: 1e9, seed: 2 });
        let report = cut_quality_report(&g, &s, 20, 3);
        assert!(report.max_relative_error < 1e-9);
        assert!((report.compression - 1.0).abs() < 1e-9);
        assert!(report.cuts_checked > 0);
    }

    #[test]
    fn report_detects_bad_sparsifier() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::gnp(40, 0.5, WeightModel::Unit, &mut rng);
        // An empty "sparsifier" is maximally wrong.
        let s = SparsifiedGraph { n: g.num_vertices(), edges: Vec::new() };
        let report = cut_quality_report(&g, &s, 10, 4);
        assert!((report.max_relative_error - 1.0).abs() < 1e-9);
    }
}
