//! Cut sparsification, including the *deferred* sparsifiers of the paper.
//!
//! A `(1±ξ)` cut sparsifier of a weighted graph `G` is a reweighted subgraph
//! `H` such that every cut of `H` is within `(1±ξ)` of the corresponding cut
//! of `G` (Benczúr–Karger). The paper needs three flavours:
//!
//! * A classical weighted sparsifier built offline ([`benczur_karger`]), using
//!   connectivity estimates from Nagamochi–Ibaraki forest decompositions
//!   ([`connectivity`]).
//! * The semi-streaming construction of Algorithm 6 ([`streaming`]), based on
//!   geometric subsampling plus `k` union-find structures per level.
//! * The **deferred** sparsifier of Definition 4 / Lemma 17 ([`deferred`]):
//!   sampling decisions are made from *promise* weights `ς` (oversampled by
//!   `χ²`), and only afterwards are the true weights `u` of the stored edges
//!   revealed; this is what lets the dual-primal algorithm perform
//!   `O(ε^{-1} log γ)` multiplier updates per single round of data access.
//!
//! [`quality`] contains the measurement utilities used by experiment E6.

pub mod benczur_karger;
pub mod connectivity;
pub mod deferred;
pub mod quality;
pub mod streaming;

pub use benczur_karger::{sparsify, SparsifiedGraph, SparsifierConfig};
pub use connectivity::forest_decomposition;
pub use deferred::{DeferredSparsifier, PromisedEdge};
pub use quality::{cut_quality_report, CutQualityReport};
pub use streaming::streaming_sparsify;
