//! Concurrent multi-session serving layer over [`DynamicMatcher`].
//!
//! The dynamic subsystem (PR 4) maintains *one* matching session from *one*
//! thread. A serving system multiplexes many independent sessions — one per
//! tenant, per marketplace, per shard of a social graph — under concurrent
//! client traffic. [`MatchingService`] is that front-end:
//!
//! ```text
//!   clients                service                     sessions
//!   ───────                ───────                     ────────
//!   submit(Request) ──▶ shard_of(session) ─▶ queue[0] ─▶ worker 0 ─▶ {"a", "d"}
//!        │                                   queue[1] ─▶ worker 1 ─▶ {"b"}
//!        ▼                                   queue[2] ─▶ worker 2 ─▶ {"c", "e"}
//!   Ticket::wait ◀────────── Response ◀──────────┘
//!   CommittedView::load ◀── snapshot slot (bypasses the queues entirely)
//! ```
//!
//! * **Session-affinity sharding.** Every request names a session; the
//!   session name hashes (FNV-1a) to one worker, whose bounded FIFO queue
//!   serializes all of that session's requests. Two batches for one session
//!   can therefore never race — per-session epoch order equals submission
//!   order, and a session's results are bit-identical to a serial replay —
//!   while different sessions proceed in parallel on different workers.
//! * **Bounded submission queues.** Each worker's queue holds at most
//!   `queue_capacity` pending requests: [`MatchingService::submit`] blocks
//!   for space (backpressure), [`MatchingService::try_submit`] returns
//!   [`ServeError::QueueFull`] instead.
//! * **Snapshot-consistent reads.** Queries through the queue are answered
//!   from the session's last committed epoch (and, being FIFO behind the
//!   session's own submits, give read-your-writes). Readers that must not
//!   wait behind submits take a [`CommittedView`] instead: an O(1) handle
//!   onto the last committed snapshot, published atomically only when an
//!   epoch fully commits — a mid-epoch or rolled-back state is never
//!   observable.
//! * **Admission control.** The service enforces one cumulative
//!   streamed-items pool across *all* sessions: admission **reserves** the
//!   pool's unreserved remainder for the epoch (a hard cap even under
//!   concurrency — two workers can never both spend the same remainder),
//!   the epoch runs under the [`ResourceBudget::intersect`] of the
//!   configured per-epoch policy budget and that grant, and settlement
//!   refunds the reservation and charges actual usage. A formally exhausted
//!   pool rejects batches with [`ServeError::AdmissionDenied`]. Failed
//!   epochs roll the *session* back (the dynamic layer's atomicity —
//!   resubmission never double-applies) but still charge the pool the
//!   batch's ingestion floor, so traffic that keeps overrunning a drained
//!   pool converges to formal exhaustion instead of spinning on rollbacks.
//!
//! * **Hibernation & recovery** (with [`ServiceConfig::store_dir`]). Sessions
//!   checkpoint to a [`mwm_persist::SessionStore`] at creation, journal every
//!   committed epoch batch, hibernate when idle or over the resident cap
//!   (LRU-first), and revive transparently on their next request — clients
//!   never see the difference except in [`SessionStats::revives`] and the
//!   latency ledger. [`MatchingService::recover`] restarts a crashed service
//!   from its store, replaying each session's journal tail; torn files are
//!   typed [`ServeError::Corrupt`], never panics.
//! * **Socket front door** ([`SocketServer`] / [`NetClient`] in [`net`]):
//!   a minimal Unix-domain (and TCP) server speaking the workspace's shared
//!   length-prefixed frame codec, mapping wire requests onto
//!   [`MatchingService::submit`] with typed wire errors.
//!
//! Determinism contract: with a fixed per-epoch `parallelism` and no pool
//! limit, a session's epoch history, matching and weight are bit-identical
//! for every service worker count and every interleaving with other
//! sessions — enforced by experiment E13's checksum column and
//! `tests/serve_stress.rs`. (A shared pool is inherently cross-session
//! state: *which* epoch trips a nearly-drained pool depends on arrival
//! order, though every individual epoch stays atomic either way.)
//! Hibernation preserves the contract: a hibernated-and-revived session's
//! subsequent epochs are bit-identical to an always-resident replica —
//! enforced by experiment E15's checksum column and `tests/persistence.rs`.

use mwm_core::{MwmError, ResourceBudget};
use mwm_dynamic::{
    CommittedSnapshot, CommittedView, DynamicConfig, DynamicMatcher, EpochDecision, EpochStats,
};
use mwm_graph::{Graph, GraphUpdate};
use mwm_persist::{PersistError, SessionStore, WalRecord};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub mod net;
pub use net::{NetClient, RemoteMatching, SocketServer};

/// Configuration of a [`MatchingService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads in the pool; sessions are sharded across them by name.
    pub workers: usize,
    /// Pending-request capacity of each worker's submission queue.
    pub queue_capacity: usize,
    /// Pass-engine threads each epoch runs with. Part of the determinism
    /// fingerprint only in wall-clock terms — results are bit-identical for
    /// every value — but kept explicit so deployments pin it.
    pub parallelism: usize,
    /// Cumulative streamed-items pool shared by every session of the service;
    /// `None` is unlimited. Enforced through each epoch's [`ResourceBudget`],
    /// so an epoch that would overrun is interrupted and rolled back by the
    /// dynamic layer, and an exhausted pool rejects batches at admission.
    pub max_streamed_items: Option<usize>,
    /// Policy budget applied to every epoch (rounds/space/oracle limits);
    /// intersected with the pool-derived budget per submit.
    pub epoch_budget: ResourceBudget,
    /// Session configuration used when `CreateSession` carries none.
    pub session_defaults: DynamicConfig,
    /// Hibernation store directory. `Some` turns persistence on: sessions
    /// are checkpointed on create, journaled per committed epoch, evicted to
    /// disk under the resident cap / idle deadline, and transparently revived
    /// on their next request. Required by [`MatchingService::recover`].
    pub store_dir: Option<PathBuf>,
    /// Service-wide cap on resident (in-memory) sessions; the overflow is
    /// hibernated LRU-first. Enforced per worker as `ceil(cap / workers)`
    /// (sessions are pinned to workers by name). Requires `store_dir`.
    pub max_resident_sessions: Option<usize>,
    /// Sessions idle longer than this are hibernated at the next sweep
    /// (sweeps piggyback on request processing). Requires `store_dir`.
    pub hibernate_after: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            parallelism: 1,
            max_streamed_items: None,
            epoch_budget: ResourceBudget::unlimited(),
            session_defaults: DynamicConfig::default(),
            store_dir: None,
            max_resident_sessions: None,
            hibernate_after: None,
        }
    }
}

impl ServiceConfig {
    /// Validates every parameter, returning the first violation.
    pub fn validate(&self) -> Result<(), MwmError> {
        if self.workers < 1 {
            return Err(MwmError::InvalidConfig {
                param: "workers",
                value: format!("{}", self.workers),
                requirement: "must be at least 1",
            });
        }
        if self.queue_capacity < 1 {
            return Err(MwmError::InvalidConfig {
                param: "queue_capacity",
                value: format!("{}", self.queue_capacity),
                requirement: "must be at least 1",
            });
        }
        if self.max_resident_sessions == Some(0) {
            return Err(MwmError::InvalidConfig {
                param: "max_resident_sessions",
                value: "0".to_string(),
                requirement: "must be at least 1 when set",
            });
        }
        if self.store_dir.is_none()
            && (self.max_resident_sessions.is_some() || self.hibernate_after.is_some())
        {
            return Err(MwmError::InvalidConfig {
                param: "store_dir",
                value: "None".to_string(),
                requirement: "resident caps and idle hibernation need a session store",
            });
        }
        self.session_defaults.validate()
    }
}

/// One operation on the service. Every request names the session it targets;
/// the name decides the worker shard, so all requests for one session are
/// processed in submission order.
#[derive(Clone, Debug)]
pub enum Request {
    /// Registers a new session over `base`. `config` falls back to
    /// [`ServiceConfig::session_defaults`].
    CreateSession {
        /// Session name (the sharding and routing key).
        session: String,
        /// The base graph the session starts from.
        base: Graph,
        /// Per-session configuration override.
        config: Option<DynamicConfig>,
    },
    /// Tears a session down, releasing its state.
    DropSession {
        /// The session to drop.
        session: String,
    },
    /// Applies one epoch of updates to a session (an empty batch bootstraps).
    SubmitBatch {
        /// The target session.
        session: String,
        /// The update batch, applied as one atomic epoch.
        updates: Vec<GraphUpdate>,
    },
    /// Reads the session's last committed matching snapshot.
    QueryMatching {
        /// The target session.
        session: String,
    },
    /// Reads the session's committed weight (cheaper than the full matching).
    QueryWeight {
        /// The target session.
        session: String,
    },
    /// Reads a summary of the session's ledger and resource consumption.
    SnapshotStats {
        /// The target session.
        session: String,
    },
    /// Compacts the session's overlay journal (see
    /// [`DynamicMatcher::compact`]); stable edge ids are renumbered.
    CompactSession {
        /// The target session.
        session: String,
    },
}

impl Request {
    /// The session a request targets (its sharding key).
    pub fn session(&self) -> &str {
        match self {
            Request::CreateSession { session, .. }
            | Request::DropSession { session }
            | Request::SubmitBatch { session, .. }
            | Request::QueryMatching { session }
            | Request::QueryWeight { session }
            | Request::SnapshotStats { session }
            | Request::CompactSession { session } => session,
        }
    }
}

/// A summary of one session's state and history.
#[derive(Clone, Debug)]
pub struct SessionStats {
    /// Session name.
    pub session: String,
    /// Committed epochs.
    pub epochs: usize,
    /// Overlay version.
    pub version: u64,
    /// Weight of the maintained matching.
    pub weight: f64,
    /// Distinct edges in the maintained matching.
    pub matching_edges: usize,
    /// Live edges in the session's overlay.
    pub live_edges: usize,
    /// Live vertices in the session's overlay.
    pub live_vertices: usize,
    /// Items this session has streamed (its draw on the service pool).
    pub items_streamed: usize,
    /// Epochs handled by localized repair.
    pub repairs: usize,
    /// Epochs handled by warm re-solve.
    pub warm_resolves: usize,
    /// Epochs handled by full rebuild.
    pub rebuilds: usize,
    /// Times this session was revived from its hibernation image since the
    /// service started (0 when persistence is off).
    pub revives: usize,
    /// Fingerprint of the session's last committed [`mwm_lp::DualSnapshot`]
    /// (0 if no duals are committed yet). Bit-sensitive: equal checksums on
    /// two replicas mean bit-identical dual state — the hibernate→revive
    /// identity check of experiment E15 rides on this field.
    pub duals_checksum: u64,
}

/// A successful answer to a [`Request`] (same order of variants).
#[derive(Clone, Debug)]
pub enum Response {
    /// The session was created.
    Created,
    /// The session was dropped after this many committed epochs.
    Dropped {
        /// Epochs the session had committed.
        epochs: usize,
    },
    /// The batch committed as one epoch; its ledger row.
    EpochApplied {
        /// The committed epoch's ledger row.
        stats: EpochStats,
    },
    /// The last committed snapshot (shared, immutable).
    Matching {
        /// The committed snapshot.
        snapshot: Arc<CommittedSnapshot>,
    },
    /// The committed weight plus its epoch/version coordinates.
    Weight {
        /// Committed epochs.
        epoch: usize,
        /// Overlay version.
        version: u64,
        /// Committed matching weight.
        weight: f64,
    },
    /// The session summary.
    Stats {
        /// The summary.
        stats: SessionStats,
    },
    /// The journal was compacted; this many dead edge ids were reclaimed.
    Compacted {
        /// Tombstoned edges reclaimed by the compaction.
        reclaimed: usize,
    },
}

/// Every failure mode of the serving layer.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// No session is registered under the requested name.
    UnknownSession {
        /// The name that failed to resolve.
        session: String,
    },
    /// `CreateSession` named an existing session.
    SessionExists {
        /// The already-taken name.
        session: String,
    },
    /// `try_submit` found the target worker's queue full.
    QueueFull {
        /// The configured per-worker capacity.
        capacity: usize,
    },
    /// The service is shut down (or shut down with this request pending).
    ServiceClosed,
    /// The service-wide streamed-items pool is exhausted.
    AdmissionDenied {
        /// Items the service has streamed across all sessions.
        used: usize,
        /// The configured pool size.
        limit: usize,
    },
    /// The engine rejected the operation (epoch errors, invalid configs, …).
    /// Budget interrupts roll the epoch back, so the batch can be resubmitted.
    Engine(MwmError),
    /// A worker answered with an unexpected response variant — a bug in the
    /// service, surfaced as an error instead of a client-side panic.
    Protocol {
        /// The variant the wrapper expected.
        expected: &'static str,
    },
    /// A session's on-disk image, journal or manifest failed validation
    /// (torn write, flipped bits, version skew). Never a panic: the request
    /// fails, the rest of the service keeps serving.
    Corrupt {
        /// What failed validation and where.
        context: String,
    },
    /// A persistence I/O operation failed (disk full, permissions, …).
    Persist {
        /// What was being done and the OS error text.
        context: String,
    },
    /// A socket request did not complete within the server's per-request
    /// deadline. The request itself may still commit — timeouts bound the
    /// *wait*, not the work.
    Timeout {
        /// The deadline that expired, in milliseconds.
        after_ms: u64,
    },
    /// A socket transport failure (connection reset, short write, …).
    Wire {
        /// What the transport was doing when it failed.
        context: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownSession { session } => write!(f, "unknown session {session:?}"),
            ServeError::SessionExists { session } => {
                write!(f, "session {session:?} already exists")
            }
            ServeError::QueueFull { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            ServeError::ServiceClosed => write!(f, "service is shut down"),
            ServeError::AdmissionDenied { used, limit } => {
                write!(f, "admission denied: service pool exhausted ({used} of {limit} items)")
            }
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::Protocol { expected } => {
                write!(f, "protocol violation: expected a {expected} response")
            }
            ServeError::Corrupt { context } => {
                write!(f, "corrupt session store data: {context}")
            }
            ServeError::Persist { context } => write!(f, "persistence failure: {context}"),
            ServeError::Timeout { after_ms } => {
                write!(f, "request timed out after {after_ms} ms")
            }
            ServeError::Wire { context } => write!(f, "wire transport failure: {context}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<MwmError> for ServeError {
    fn from(e: MwmError) -> Self {
        ServeError::Engine(e)
    }
}

impl From<PersistError> for ServeError {
    fn from(e: PersistError) -> Self {
        match e {
            PersistError::Corrupt { context } => ServeError::Corrupt { context },
            PersistError::Io { context } => ServeError::Persist { context },
        }
    }
}

/// One-shot result slot shared between a [`Ticket`] and its worker-side
/// completer.
struct TicketSlot {
    state: Mutex<Option<Result<Response, ServeError>>>,
    ready: Condvar,
}

/// The client's handle on an in-flight request.
pub struct Ticket {
    slot: Arc<TicketSlot>,
}

impl Ticket {
    fn new() -> (Ticket, Completer) {
        let slot = Arc::new(TicketSlot { state: Mutex::new(None), ready: Condvar::new() });
        (Ticket { slot: Arc::clone(&slot) }, Completer { slot, done: false })
    }

    /// Blocks until the worker answers. Requests still queued when the
    /// service shuts down resolve to [`ServeError::ServiceClosed`], so this
    /// never deadlocks.
    pub fn wait(self) -> Result<Response, ServeError> {
        let mut state = self.slot.state.lock().expect("ticket lock poisoned");
        loop {
            if let Some(result) = state.take() {
                return result;
            }
            state = self.slot.ready.wait(state).expect("ticket lock poisoned");
        }
    }

    /// True once the worker has answered (non-blocking).
    pub fn is_ready(&self) -> bool {
        self.slot.state.lock().expect("ticket lock poisoned").is_some()
    }

    /// [`Ticket::wait`] with a deadline. `Ok(result)` if the worker answered
    /// in time; `Err(self)` hands the still-live ticket back so the caller
    /// can keep waiting, poll, or drop it (the request itself is unaffected —
    /// a timed-out batch may still commit; the deadline bounds the *wait*).
    pub fn wait_timeout(self, timeout: Duration) -> Result<Result<Response, ServeError>, Ticket> {
        let deadline = Instant::now() + timeout;
        let mut state = self.slot.state.lock().expect("ticket lock poisoned");
        loop {
            if let Some(result) = state.take() {
                return Ok(result);
            }
            let now = Instant::now();
            if now >= deadline {
                drop(state);
                return Err(self);
            }
            let (guard, _) =
                self.slot.ready.wait_timeout(state, deadline - now).expect("ticket lock poisoned");
            state = guard;
        }
    }
}

/// Worker-side half of a ticket. Dropping it unanswered (worker panic,
/// shutdown drain) resolves the ticket to [`ServeError::ServiceClosed`]
/// instead of leaving the client blocked forever.
struct Completer {
    slot: Arc<TicketSlot>,
    done: bool,
}

impl Completer {
    fn complete(mut self, result: Result<Response, ServeError>) {
        self.fill(result);
    }

    fn fill(&mut self, result: Result<Response, ServeError>) {
        let mut state = self.slot.state.lock().expect("ticket lock poisoned");
        if state.is_none() {
            *state = Some(result);
        }
        self.done = true;
        self.slot.ready.notify_all();
    }
}

impl Drop for Completer {
    fn drop(&mut self) {
        if !self.done {
            self.fill(Err(ServeError::ServiceClosed));
        }
    }
}

/// A queued request together with its answer slot.
struct Job {
    request: Request,
    completer: Completer,
}

/// One worker's bounded FIFO submission queue.
struct Shard {
    queue: Mutex<ShardQueue>,
    not_empty: Condvar,
    not_full: Condvar,
    /// `serve_queue_depth{worker=i}` — set after every push and pop, so a
    /// live scrape sees each worker's backlog.
    depth_gauge: Arc<mwm_obs::Gauge>,
}

struct ShardQueue {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl Shard {
    fn new(index: usize) -> Self {
        Shard {
            queue: Mutex::new(ShardQueue { jobs: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            depth_gauge: mwm_obs::global()
                .gauge_with("serve_queue_depth", &[("worker", &index.to_string())]),
        }
    }
}

/// FNV-1a of the session name: the sharding key. Stable across runs and
/// platforms, so a deployment's session→worker placement is reproducible.
fn shard_of(session: &str, workers: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in session.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % workers as u64) as usize
}

/// The service-wide streamed-items pool, with **reservation** accounting so
/// concurrent epochs on different workers can never jointly overrun the
/// limit: admission grants an epoch the currently *unreserved* remainder
/// (under the lock), the epoch runs against that grant, and settlement
/// refunds the reservation and charges the actual usage. An epoch admitted
/// while another holds the whole remainder gets a zero grant and fails as a
/// retryable budget interrupt; [`ServeError::AdmissionDenied`] is reserved
/// for formal exhaustion (`used >= limit`). The only overrun possible is the
/// pass engine's batch-granularity overshoot of a single grant — bounded by
/// the engine batch size, independent of worker count.
struct Pool {
    limit: usize,
    state: Mutex<PoolState>,
}

#[derive(Default)]
struct PoolState {
    used: usize,
    reserved: usize,
}

impl Pool {
    /// Admission: either the pool is formally exhausted, or the epoch is
    /// granted the unreserved remainder (possibly 0 under contention).
    fn reserve(&self) -> Result<usize, ServeError> {
        let mut st = self.state.lock().expect("pool lock poisoned");
        if st.used >= self.limit {
            mwm_obs::counter!("serve_admission_denied_total").inc();
            return Err(ServeError::AdmissionDenied { used: st.used, limit: self.limit });
        }
        let grant = self.limit - st.used - st.reserved.min(self.limit - st.used);
        st.reserved += grant;
        mwm_obs::counter!("serve_pool_reservations_total").inc();
        Ok(grant)
    }

    /// Settlement: refund the grant, charge what the epoch actually used —
    /// or, for a failed epoch, at least the batch's ingestion floor (capped
    /// by the grant, so pure-contention failures charge nothing) so traffic
    /// that keeps overrunning converges to formal exhaustion.
    fn settle(&self, grant: usize, consumed: usize, failed_floor: Option<usize>) {
        let mut st = self.state.lock().expect("pool lock poisoned");
        st.reserved -= grant;
        let charge = match failed_floor {
            Some(floor) => consumed.max(floor.min(grant)),
            None => consumed,
        };
        st.used += charge;
        mwm_obs::counter!("serve_pool_refunds_total").inc();
        mwm_obs::gauge!("serve_pool_used").set(st.used as i64);
    }

    fn used(&self) -> usize {
        self.state.lock().expect("pool lock poisoned").used
    }
}

/// Shared hibernation state: the session store (one lock for manifest and
/// file operations) plus the revive-latency ledger and the eviction policy.
struct PersistCtx {
    store: Mutex<SessionStore>,
    /// Wall-clock milliseconds of every revive, in completion order.
    revive_ms: Mutex<Vec<f64>>,
    /// Per-worker resident cap (`ceil(max_resident_sessions / workers)`).
    per_worker_cap: Option<usize>,
    hibernate_after: Option<Duration>,
}

/// Everything a worker thread needs besides its own queue and session map.
#[derive(Clone)]
struct WorkerCtx {
    views: Arc<Mutex<HashMap<String, CommittedView>>>,
    pool: Option<Arc<Pool>>,
    served: Arc<AtomicUsize>,
    epoch_budget: ResourceBudget,
    parallelism: usize,
    session_defaults: DynamicConfig,
    persist: Option<Arc<PersistCtx>>,
}

/// One worker's session table: the resident (in-memory) sessions plus the
/// per-session revive counters (which outlive hibernation).
#[derive(Default)]
struct WorkerSessions {
    resident: HashMap<String, Resident>,
    revives: HashMap<String, usize>,
}

/// A resident session with its LRU clock.
struct Resident {
    dm: DynamicMatcher,
    last_used: Instant,
}

/// The serving front-end: a fixed worker pool multiplexing many named
/// [`DynamicMatcher`] sessions behind bounded, session-sharded queues.
/// See the crate docs for the full architecture.
pub struct MatchingService {
    shards: Arc<Vec<Shard>>,
    handles: Vec<JoinHandle<()>>,
    views: Arc<Mutex<HashMap<String, CommittedView>>>,
    pool: Option<Arc<Pool>>,
    persist: Option<Arc<PersistCtx>>,
    submitted: AtomicUsize,
    served: Arc<AtomicUsize>,
    queue_capacity: usize,
}

impl MatchingService {
    /// Starts the worker pool (validated config). With
    /// [`ServiceConfig::store_dir`] set, the store is opened (its manifest
    /// validated) before any worker spawns; sessions already on disk are
    /// revived lazily on their first request — use
    /// [`MatchingService::recover`] to touch them all eagerly.
    pub fn start(config: ServiceConfig) -> Result<Self, MwmError> {
        config.validate()?;
        let persist = match &config.store_dir {
            None => None,
            Some(dir) => {
                let store = SessionStore::open(dir.clone()).map_err(|e| {
                    MwmError::InvalidInput { reason: format!("opening session store: {e}") }
                })?;
                let per_worker_cap =
                    config.max_resident_sessions.map(|cap| cap.div_ceil(config.workers));
                Some(Arc::new(PersistCtx {
                    store: Mutex::new(store),
                    revive_ms: Mutex::new(Vec::new()),
                    per_worker_cap,
                    hibernate_after: config.hibernate_after,
                }))
            }
        };
        let shards: Arc<Vec<Shard>> = Arc::new((0..config.workers).map(Shard::new).collect());
        let views = Arc::new(Mutex::new(HashMap::new()));
        let pool = config
            .max_streamed_items
            .map(|limit| Arc::new(Pool { limit, state: Mutex::new(PoolState::default()) }));
        let served = Arc::new(AtomicUsize::new(0));
        let ctx = WorkerCtx {
            views: Arc::clone(&views),
            pool: pool.clone(),
            served: Arc::clone(&served),
            epoch_budget: config.epoch_budget,
            parallelism: config.parallelism.max(1),
            session_defaults: config.session_defaults,
            persist: persist.clone(),
        };
        let mut handles = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let shards = Arc::clone(&shards);
            let ctx = ctx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("mwm-serve-worker-{i}"))
                .spawn(move || worker_loop(&shards[i], &ctx))
                .expect("failed to spawn service worker thread");
            handles.push(handle);
        }
        Ok(MatchingService {
            shards,
            handles,
            views,
            pool,
            persist,
            submitted: AtomicUsize::new(0),
            served,
            queue_capacity: config.queue_capacity,
        })
    }

    /// Crash recovery: starts the service on an existing store and eagerly
    /// touches every stored session, so each image+journal pair is revived
    /// (journal tail replayed), re-registered for [`MatchingService::view`] /
    /// [`MatchingService::sessions`], and re-hibernated under the configured
    /// eviction policy. A session whose files fail validation surfaces as
    /// [`ServeError::Corrupt`] here instead of at first client contact.
    pub fn recover(config: ServiceConfig) -> Result<Self, ServeError> {
        if config.store_dir.is_none() {
            return Err(ServeError::Engine(MwmError::InvalidConfig {
                param: "store_dir",
                value: "None".to_string(),
                requirement: "recover() needs a session store directory",
            }));
        }
        let service = MatchingService::start(config)?;
        for name in service.stored_sessions() {
            service.submit(Request::QueryWeight { session: name })?.wait()?;
        }
        Ok(service)
    }

    /// Enqueues a request on its session's worker, blocking while the queue
    /// is full (backpressure). Returns the ticket to wait on.
    pub fn submit(&self, request: Request) -> Result<Ticket, ServeError> {
        self.submit_inner(request, true)
    }

    /// Non-blocking [`MatchingService::submit`]: a full queue is
    /// [`ServeError::QueueFull`] instead of a wait.
    pub fn try_submit(&self, request: Request) -> Result<Ticket, ServeError> {
        self.submit_inner(request, false)
    }

    fn submit_inner(&self, request: Request, block: bool) -> Result<Ticket, ServeError> {
        let shard = &self.shards[shard_of(request.session(), self.shards.len())];
        let (ticket, completer) = Ticket::new();
        let mut q = shard.queue.lock().expect("submission queue lock poisoned");
        loop {
            if q.closed {
                return Err(ServeError::ServiceClosed);
            }
            if q.jobs.len() < self.queue_capacity {
                break;
            }
            if !block {
                return Err(ServeError::QueueFull { capacity: self.queue_capacity });
            }
            q = shard.not_full.wait(q).expect("submission queue lock poisoned");
        }
        q.jobs.push_back(Job { request, completer });
        shard.depth_gauge.set(q.jobs.len() as i64);
        drop(q);
        shard.not_empty.notify_one();
        self.submitted.fetch_add(1, Ordering::Relaxed);
        mwm_obs::counter!("serve_requests_total").inc();
        Ok(ticket)
    }

    /// A queue-bypassing committed-state handle for the session, or `None`
    /// if no such session exists. Loads never wait behind in-flight epochs
    /// and always observe a complete committed epoch; the handle stays
    /// readable (frozen at the last committed state) after the session is
    /// dropped or the service shuts down.
    pub fn view(&self, session: &str) -> Option<CommittedView> {
        self.views.lock().expect("view registry lock poisoned").get(session).cloned()
    }

    /// The registered session names, sorted.
    pub fn sessions(&self) -> Vec<String> {
        let mut names: Vec<String> =
            self.views.lock().expect("view registry lock poisoned").keys().cloned().collect();
        names.sort();
        names
    }

    /// Items streamed across all sessions (the pool's fill level).
    pub fn pool_used(&self) -> usize {
        self.pool.as_ref().map(|p| p.used()).unwrap_or(0)
    }

    /// Names of all sessions in the hibernation store (sorted); empty when
    /// persistence is off. A stored session may or may not also be resident.
    pub fn stored_sessions(&self) -> Vec<String> {
        match &self.persist {
            Some(p) => p.store.lock().expect("store lock poisoned").names(),
            None => Vec::new(),
        }
    }

    /// Wall-clock milliseconds of every revive so far, in completion order —
    /// the raw samples behind experiment E15's p50/p99 columns.
    pub fn revive_latencies_ms(&self) -> Vec<f64> {
        match &self.persist {
            Some(p) => p.revive_ms.lock().expect("latency ledger poisoned").clone(),
            None => Vec::new(),
        }
    }

    /// Total revives performed by the service so far.
    pub fn revives(&self) -> usize {
        match &self.persist {
            Some(p) => p.revive_ms.lock().expect("latency ledger poisoned").len(),
            None => 0,
        }
    }

    /// The configured pool size, if any.
    pub fn pool_limit(&self) -> Option<usize> {
        self.pool.as_ref().map(|p| p.limit)
    }

    /// Requests accepted so far (including ones still queued).
    pub fn requests_submitted(&self) -> usize {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Requests fully processed so far.
    pub fn requests_served(&self) -> usize {
        self.served.load(Ordering::Relaxed)
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.shards.len()
    }

    // ---- typed convenience wrappers (submit + wait) ----

    /// Creates a session with the service's default configuration.
    pub fn create_session(&self, session: &str, base: &Graph) -> Result<(), ServeError> {
        self.create_session_with(session, base, None)
    }

    /// Creates a session with an explicit configuration override.
    pub fn create_session_with(
        &self,
        session: &str,
        base: &Graph,
        config: Option<DynamicConfig>,
    ) -> Result<(), ServeError> {
        let request =
            Request::CreateSession { session: session.to_string(), base: base.clone(), config };
        match self.submit(request)?.wait()? {
            Response::Created => Ok(()),
            _ => Err(ServeError::Protocol { expected: "Created" }),
        }
    }

    /// Drops a session; returns how many epochs it had committed.
    pub fn drop_session(&self, session: &str) -> Result<usize, ServeError> {
        match self.submit(Request::DropSession { session: session.to_string() })?.wait()? {
            Response::Dropped { epochs } => Ok(epochs),
            _ => Err(ServeError::Protocol { expected: "Dropped" }),
        }
    }

    /// Applies one epoch of updates (an empty batch bootstraps the session)
    /// and returns the committed epoch's ledger row.
    pub fn submit_batch(
        &self,
        session: &str,
        updates: Vec<GraphUpdate>,
    ) -> Result<EpochStats, ServeError> {
        let request = Request::SubmitBatch { session: session.to_string(), updates };
        match self.submit(request)?.wait()? {
            Response::EpochApplied { stats } => Ok(stats),
            _ => Err(ServeError::Protocol { expected: "EpochApplied" }),
        }
    }

    /// The session's last committed snapshot, read through the queue (FIFO
    /// after the session's own submits — read-your-writes).
    pub fn matching(&self, session: &str) -> Result<Arc<CommittedSnapshot>, ServeError> {
        match self.submit(Request::QueryMatching { session: session.to_string() })?.wait()? {
            Response::Matching { snapshot } => Ok(snapshot),
            _ => Err(ServeError::Protocol { expected: "Matching" }),
        }
    }

    /// The session's committed weight with its epoch/version coordinates.
    pub fn weight(&self, session: &str) -> Result<(usize, u64, f64), ServeError> {
        match self.submit(Request::QueryWeight { session: session.to_string() })?.wait()? {
            Response::Weight { epoch, version, weight } => Ok((epoch, version, weight)),
            _ => Err(ServeError::Protocol { expected: "Weight" }),
        }
    }

    /// The session's summary statistics.
    pub fn session_stats(&self, session: &str) -> Result<SessionStats, ServeError> {
        match self.submit(Request::SnapshotStats { session: session.to_string() })?.wait()? {
            Response::Stats { stats } => Ok(stats),
            _ => Err(ServeError::Protocol { expected: "Stats" }),
        }
    }

    /// Compacts the session's journal; returns the reclaimed edge count.
    pub fn compact_session(&self, session: &str) -> Result<usize, ServeError> {
        match self.submit(Request::CompactSession { session: session.to_string() })?.wait()? {
            Response::Compacted { reclaimed } => Ok(reclaimed),
            _ => Err(ServeError::Protocol { expected: "Compacted" }),
        }
    }

    /// Closes every queue and joins the workers. Requests already queued are
    /// drained and answered first; later submissions fail with
    /// [`ServeError::ServiceClosed`]. [`CommittedView`] handles obtained
    /// earlier keep serving the last committed state.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        for shard in self.shards.iter() {
            let mut q = shard.queue.lock().expect("submission queue lock poisoned");
            q.closed = true;
            drop(q);
            shard.not_empty.notify_all();
            shard.not_full.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for MatchingService {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// On-demand publication of the service's levels (event-time counters like
/// `serve_requests_total` record themselves as requests flow).
impl mwm_obs::Observable for MatchingService {
    fn obs_scope(&self) -> &'static str {
        "serve"
    }

    fn publish_metrics(&self, registry: &mwm_obs::Registry) {
        registry.gauge("serve_sessions").set(self.sessions().len() as i64);
        registry.gauge("serve_pool_used").set(self.pool_used() as i64);
        registry.gauge("serve_requests_submitted").set(self.requests_submitted() as i64);
        registry.gauge("serve_requests_served").set(self.requests_served() as i64);
    }
}

/// One worker: drains its shard's queue in FIFO order, owning every session
/// hashed to it (no locks around session state — a session is touched by
/// exactly one thread for its whole life, resident or hibernated). With
/// persistence on, every request is followed by an eviction sweep, so idle
/// and over-cap sessions drain to disk as long as any traffic flows.
fn worker_loop(shard: &Shard, ctx: &WorkerCtx) {
    let mut sessions = WorkerSessions::default();
    loop {
        let job = {
            let mut q = shard.queue.lock().expect("submission queue lock poisoned");
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    shard.depth_gauge.set(q.jobs.len() as i64);
                    break Some(job);
                }
                if q.closed {
                    break None;
                }
                q = shard.not_empty.wait(q).expect("submission queue lock poisoned");
            }
        };
        let Some(job) = job else { break };
        shard.not_full.notify_one();
        let result = handle_request(job.request, &mut sessions, ctx);
        job.completer.complete(result);
        evict_sweep(&mut sessions, ctx);
        ctx.served.fetch_add(1, Ordering::Relaxed);
    }
    // Shutdown: checkpoint every still-resident session so the store is a
    // complete image set (journals cleared) for the next start or recover.
    if let Some(persist) = &ctx.persist {
        let mut store = persist.store.lock().expect("store lock poisoned");
        for (name, res) in &sessions.resident {
            store.save(name, &res.dm).ok();
        }
    }
}

/// Resolves `name` to its resident session, transparently reviving it from
/// the store (image + journal-tail replay) when persistence is on. Records
/// the revive latency and bumps the session's revive counter. The revived
/// session's fresh [`CommittedView`] replaces the registry entry, so new
/// `view()` handles track post-revive commits (handles obtained before the
/// hibernation stay frozen at their last committed state).
fn resolve<'a>(
    name: &str,
    sessions: &'a mut WorkerSessions,
    ctx: &WorkerCtx,
) -> Result<&'a mut DynamicMatcher, ServeError> {
    if !sessions.resident.contains_key(name) {
        let Some(persist) = &ctx.persist else {
            return Err(ServeError::UnknownSession { session: name.to_string() });
        };
        let clock = Instant::now();
        let (dm, _replayed) = {
            let store = persist.store.lock().expect("store lock poisoned");
            if !store.contains(name) {
                return Err(ServeError::UnknownSession { session: name.to_string() });
            }
            store.load(name)?
        };
        let elapsed = clock.elapsed();
        let elapsed_ms = elapsed.as_secs_f64() * 1e3;
        persist.revive_ms.lock().expect("latency ledger poisoned").push(elapsed_ms);
        mwm_obs::counter!("serve_revives_total").inc();
        mwm_obs::histogram!("serve_revive_seconds", &mwm_obs::LATENCY_SECONDS_BOUNDS)
            .observe_duration(elapsed);
        *sessions.revives.entry(name.to_string()).or_insert(0) += 1;
        ctx.views
            .lock()
            .expect("view registry lock poisoned")
            .insert(name.to_string(), dm.committed_view());
        sessions.resident.insert(name.to_string(), Resident { dm, last_used: Instant::now() });
    }
    let res = sessions.resident.get_mut(name).expect("resident after revive");
    res.last_used = Instant::now();
    Ok(&mut res.dm)
}

/// Hibernates one resident session (checkpoint image, journal cleared). On a
/// store failure the session simply stays resident — holding memory beats
/// losing state, and the next sweep retries.
fn hibernate_one(name: &str, sessions: &mut WorkerSessions, persist: &PersistCtx) -> bool {
    let Some(res) = sessions.resident.get(name) else { return false };
    let clock = Instant::now();
    let saved = persist.store.lock().expect("store lock poisoned").save(name, &res.dm);
    match saved {
        Ok(()) => {
            mwm_obs::counter!("serve_hibernates_total").inc();
            mwm_obs::histogram!("serve_hibernate_seconds", &mwm_obs::LATENCY_SECONDS_BOUNDS)
                .observe_duration(clock.elapsed());
            sessions.resident.remove(name);
            true
        }
        Err(_) => false,
    }
}

/// The post-request eviction sweep: first every session idle past
/// `hibernate_after`, then LRU-first down to the per-worker resident cap.
/// The view registry keeps hibernated sessions' entries, so
/// [`MatchingService::sessions`] and existing view handles stay intact.
fn evict_sweep(sessions: &mut WorkerSessions, ctx: &WorkerCtx) {
    let Some(persist) = &ctx.persist else { return };
    if let Some(idle) = persist.hibernate_after {
        let expired: Vec<String> = sessions
            .resident
            .iter()
            .filter(|(_, r)| r.last_used.elapsed() >= idle)
            .map(|(n, _)| n.clone())
            .collect();
        for name in expired {
            hibernate_one(&name, sessions, persist);
        }
    }
    if let Some(cap) = persist.per_worker_cap {
        while sessions.resident.len() > cap {
            let lru = sessions
                .resident
                .iter()
                .min_by_key(|(_, r)| r.last_used)
                .map(|(n, _)| n.clone())
                .expect("resident map non-empty above its cap");
            if !hibernate_one(&lru, sessions, persist) {
                break;
            }
        }
    }
}

fn handle_request(
    request: Request,
    sessions: &mut WorkerSessions,
    ctx: &WorkerCtx,
) -> Result<Response, ServeError> {
    match request {
        Request::CreateSession { session, base, config } => {
            let stored = match &ctx.persist {
                Some(p) => p.store.lock().expect("store lock poisoned").contains(&session),
                None => false,
            };
            if sessions.resident.contains_key(&session) || stored {
                return Err(ServeError::SessionExists { session });
            }
            let dm = DynamicMatcher::new(&base, config.unwrap_or(ctx.session_defaults))?;
            if let Some(persist) = &ctx.persist {
                // Checkpoint at birth: a crash after Created is acknowledged
                // must still find the session on recovery.
                persist.store.lock().expect("store lock poisoned").save(&session, &dm)?;
            }
            ctx.views
                .lock()
                .expect("view registry lock poisoned")
                .insert(session.clone(), dm.committed_view());
            sessions.resident.insert(session, Resident { dm, last_used: Instant::now() });
            Ok(Response::Created)
        }
        Request::DropSession { session } => {
            // Revive-then-drop: the response reports the epoch count, which
            // only the revived session knows.
            let epochs = resolve(&session, sessions, ctx)?.epochs();
            sessions.resident.remove(&session);
            sessions.revives.remove(&session);
            if let Some(persist) = &ctx.persist {
                persist.store.lock().expect("store lock poisoned").remove(&session)?;
            }
            ctx.views.lock().expect("view registry lock poisoned").remove(&session);
            Ok(Response::Dropped { epochs })
        }
        Request::SubmitBatch { session, updates } => {
            let dm = resolve(&session, sessions, ctx)?;
            // Admission control: the epoch runs under the intersection of the
            // service's per-epoch policy budget and its reserved slice of the
            // pool (rebased onto this session's cumulative counter, which is
            // how the dynamic layer enforces streamed-items limits). The
            // reservation makes the pool a hard cap under concurrency: two
            // workers can never both spend the same remainder.
            let grant = match &ctx.pool {
                Some(pool) => Some(pool.reserve()?),
                None => None,
            };
            let pool_budget = match grant {
                Some(grant) => ResourceBudget::unlimited()
                    .with_max_streamed_items(dm.tracker().items_streamed() + grant),
                None => ResourceBudget::unlimited(),
            };
            let budget = ctx
                .epoch_budget
                .intersect(&pool_budget)
                .with_parallelism(ctx.epoch_budget.parallelism().unwrap_or(ctx.parallelism));
            let before = dm.tracker().items_streamed();
            let batch_len = updates.len();
            let epoch_index = dm.epochs() as u64;
            let outcome = dm.apply_epoch(&updates, &budget);
            // Settlement: successful epochs charge their exact usage. A
            // failed epoch rolls the *session* back, but its ingestion pass
            // did stream (part of) the batch before the trip; the pool is
            // charged that observable floor — capped by the grant, so a
            // zero-grant contention failure charges nothing — and batches
            // that keep overrunning a drained pool ratchet it to formal
            // exhaustion instead of spinning.
            let delta = dm.tracker().items_streamed() - before;
            if let (Some(pool), Some(grant)) = (&ctx.pool, grant) {
                let floor = if outcome.is_ok() { None } else { Some(batch_len) };
                pool.settle(grant, delta, floor);
            }
            let stats = outcome?.stats;
            if let Some(persist) = &ctx.persist {
                // Journal AFTER the commit (write-behind of committed state,
                // never of intentions): recovery replays exactly the epochs
                // that committed, and a crash before this append merely
                // loses the newest epoch's durability, not its atomicity.
                // An append failure is surfaced — the epoch *is* committed
                // in memory, but the client must learn durability is gone.
                persist
                    .store
                    .lock()
                    .expect("store lock poisoned")
                    .append(&session, &WalRecord::Batch { epoch: epoch_index, updates })?;
            }
            Ok(Response::EpochApplied { stats })
        }
        Request::QueryMatching { session } => {
            let dm = resolve(&session, sessions, ctx)?;
            Ok(Response::Matching { snapshot: dm.committed() })
        }
        Request::QueryWeight { session } => {
            let dm = resolve(&session, sessions, ctx)?;
            Ok(Response::Weight {
                epoch: dm.epochs(),
                version: dm.overlay().version(),
                weight: dm.weight(),
            })
        }
        Request::SnapshotStats { session } => {
            let dm = resolve(&session, sessions, ctx)?;
            let count = |d: EpochDecision| dm.ledger().iter().filter(|s| s.decision == d).count();
            let mut stats = SessionStats {
                session: session.clone(),
                epochs: dm.epochs(),
                version: dm.overlay().version(),
                weight: dm.weight(),
                matching_edges: dm.matching().num_edges(),
                live_edges: dm.overlay().num_live_edges(),
                live_vertices: dm.overlay().num_live_vertices(),
                items_streamed: dm.tracker().items_streamed(),
                repairs: count(EpochDecision::Repair),
                warm_resolves: count(EpochDecision::WarmResolve),
                rebuilds: count(EpochDecision::Rebuild),
                revives: 0,
                duals_checksum: dm.duals().map(|d| d.fingerprint()).unwrap_or(0),
            };
            stats.revives = sessions.revives.get(&session).copied().unwrap_or(0);
            Ok(Response::Stats { stats })
        }
        Request::CompactSession { session } => {
            let dm = resolve(&session, sessions, ctx)?;
            let remap = dm.compact();
            let reclaimed = remap.iter().filter(|&&m| m == usize::MAX).count();
            let version = dm.overlay().version();
            if let Some(persist) = &ctx.persist {
                persist
                    .store
                    .lock()
                    .expect("store lock poisoned")
                    .append(&session, &WalRecord::Compact { version })?;
            }
            Ok(Response::Compacted { reclaimed })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwm_core::ResourceBudget;
    use mwm_graph::generators::{self, WeightModel};
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn base_graph(seed: u64, n: usize, m: usize) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::gnm(n, m, WeightModel::Uniform(1.0, 9.0), &mut rng)
    }

    fn batch(next_id: usize, n: usize, seed: u64, size: usize) -> Vec<GraphUpdate> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..size)
            .map(|_| match rng.gen_range(0..3u32) {
                0 => GraphUpdate::InsertEdge {
                    u: rng.gen_range(0..n as u32),
                    v: rng.gen_range(0..n as u32),
                    w: rng.gen_range(1.0..9.0),
                },
                1 => GraphUpdate::DeleteEdge { id: rng.gen_range(0..next_id.max(1)) },
                _ => GraphUpdate::ReweightEdge {
                    id: rng.gen_range(0..next_id.max(1)),
                    w: rng.gen_range(1.0..9.0),
                },
            })
            .collect()
    }

    fn config() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            session_defaults: DynamicConfig { eps: 0.25, p: 2.0, seed: 7, ..Default::default() },
            ..Default::default()
        }
    }

    /// Serial oracle: the same session replayed directly on a DynamicMatcher.
    fn serial_replay(base: &Graph, batches: &[Vec<GraphUpdate>]) -> DynamicMatcher {
        let mut dm = DynamicMatcher::new(base, config().session_defaults).unwrap();
        dm.apply_epoch(&[], &ResourceBudget::unlimited()).unwrap();
        for b in batches {
            dm.apply_epoch(b, &ResourceBudget::unlimited()).unwrap();
        }
        dm
    }

    #[test]
    fn sessions_served_through_the_pool_match_serial_replay_bitwise() {
        let service = MatchingService::start(config()).unwrap();
        let names = ["alpha", "beta", "gamma"];
        let mut expected = Vec::new();
        for (i, name) in names.iter().enumerate() {
            let base = base_graph(i as u64, 40, 140);
            service.create_session(name, &base).unwrap();
            let s0 = service.submit_batch(name, Vec::new()).unwrap();
            assert_eq!(s0.decision, EpochDecision::Rebuild);
            let mut next_id = base.num_edges();
            let mut batches = Vec::new();
            for round in 0..3u64 {
                let b = batch(next_id, 40, 100 * i as u64 + round, 12);
                next_id += b.iter().filter(|u| matches!(u, GraphUpdate::InsertEdge { .. })).count();
                service.submit_batch(name, b.clone()).unwrap();
                batches.push(b);
            }
            expected.push(serial_replay(&base, &batches));
        }
        for (name, oracle) in names.iter().zip(&expected) {
            let snap = service.matching(name).unwrap();
            assert_eq!(snap.epoch, oracle.epochs());
            assert_eq!(snap.weight.to_bits(), oracle.weight().to_bits(), "{name} diverged");
            let served: Vec<(usize, u64)> =
                snap.matching.iter().map(|(id, _, m)| (id, m)).collect();
            let direct: Vec<(usize, u64)> =
                oracle.matching().iter().map(|(id, _, m)| (id, m)).collect();
            assert_eq!(served, direct, "{name}: matching diverged from serial replay");
        }
        assert_eq!(service.sessions(), vec!["alpha", "beta", "gamma"]);
        service.shutdown();
    }

    #[test]
    fn unknown_and_duplicate_sessions_are_typed_errors() {
        let service = MatchingService::start(config()).unwrap();
        let base = base_graph(9, 20, 60);
        assert_eq!(
            service.submit_batch("ghost", Vec::new()).err(),
            Some(ServeError::UnknownSession { session: "ghost".into() })
        );
        service.create_session("a", &base).unwrap();
        assert_eq!(
            service.create_session("a", &base),
            Err(ServeError::SessionExists { session: "a".into() })
        );
        let epochs = service.drop_session("a").unwrap();
        assert_eq!(epochs, 0);
        assert!(service.view("a").is_none());
        assert_eq!(service.weight("a"), Err(ServeError::UnknownSession { session: "a".into() }));
        service.shutdown();
    }

    #[test]
    fn committed_views_bypass_the_queue_and_survive_shutdown() {
        let service = MatchingService::start(config()).unwrap();
        let base = base_graph(4, 30, 100);
        service.create_session("s", &base).unwrap();
        let view = service.view("s").expect("registered view");
        assert_eq!(view.load().epoch, 0);
        service.submit_batch("s", Vec::new()).unwrap();
        let snap = view.load();
        assert_eq!(snap.epoch, 1);
        assert!(snap.weight > 0.0);
        let (epoch, version, weight) = service.weight("s").unwrap();
        assert_eq!((epoch, version), (snap.epoch, snap.version));
        assert_eq!(weight.to_bits(), snap.weight.to_bits());
        service.shutdown();
        // The handle outlives the service, frozen at the last commit.
        assert_eq!(view.load().weight.to_bits(), snap.weight.to_bits());
    }

    #[test]
    fn the_service_pool_is_enforced_across_sessions() {
        // A pool too small for even one bootstrap: the epoch is interrupted
        // (and rolled back), the pool stays uncharged, and once a session
        // has drained the pool any further batch is rejected at admission.
        let tiny = ServiceConfig { max_streamed_items: Some(60), workers: 1, ..config() };
        let service = MatchingService::start(tiny).unwrap();
        let base = base_graph(5, 40, 160);
        service.create_session("a", &base).unwrap();
        match service.submit_batch("a", Vec::new()) {
            Err(ServeError::Engine(MwmError::BudgetExceeded { resource, .. })) => {
                assert_eq!(resource, "streamed items");
            }
            other => panic!("expected a budget interrupt, got {other:?}"),
        }
        assert_eq!(service.view("a").unwrap().load().epoch, 0, "failed epoch rolled back");

        // A pool that fits one bootstrap plus a slim margin: session a
        // bootstraps, then session b's batches drain the margin (each attempt
        // charges at least its ingestion floor) until admission is denied.
        let mut probe = DynamicMatcher::new(&base, config().session_defaults).unwrap();
        probe.apply_epoch(&[], &ResourceBudget::unlimited()).unwrap();
        let bootstrap_cost = probe.tracker().items_streamed();
        let pool = bootstrap_cost + 1_000;
        let sized = ServiceConfig { max_streamed_items: Some(pool), workers: 1, ..config() };
        let service = MatchingService::start(sized).unwrap();
        service.create_session("a", &base).unwrap();
        service.create_session("b", &base).unwrap();
        service.submit_batch("a", Vec::new()).unwrap();
        assert_eq!(service.pool_used(), bootstrap_cost, "the pool sees the bootstrap's usage");
        let mut denied = false;
        for round in 0..100u64 {
            match service.submit_batch("b", batch(base.num_edges(), 40, round, 100)) {
                Ok(_) => {}
                Err(ServeError::AdmissionDenied { used, limit }) => {
                    assert!(used >= limit);
                    assert_eq!(limit, pool);
                    denied = true;
                    break;
                }
                Err(ServeError::Engine(MwmError::BudgetExceeded { .. })) => {
                    // Mid-epoch interrupt: rolled back; the ingestion floor
                    // still drains the pool toward formal exhaustion.
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!(denied, "the pool must eventually deny admission");
        service.shutdown();
    }

    #[test]
    fn the_pool_is_a_hard_cap_under_concurrent_workers() {
        // Many sessions spread over 4 workers race for a pool sized for
        // ~1.5 bootstraps. Reservation accounting must keep total usage at
        // the limit (plus at most per-epoch engine overshoot), never
        // workers x the remainder, while at least one epoch fits.
        let base = base_graph(11, 40, 160);
        let mut probe = DynamicMatcher::new(&base, config().session_defaults).unwrap();
        probe.apply_epoch(&[], &ResourceBudget::unlimited()).unwrap();
        let bootstrap_cost = probe.tracker().items_streamed();
        let limit = bootstrap_cost + bootstrap_cost / 2;
        let service = MatchingService::start(ServiceConfig {
            workers: 4,
            max_streamed_items: Some(limit),
            ..config()
        })
        .unwrap();
        let names: Vec<String> = (0..8).map(|i| format!("cap-{i}")).collect();
        for name in &names {
            service.create_session(name, &base).unwrap();
        }
        // Fire all bootstraps at once so the workers genuinely race.
        let tickets: Vec<Ticket> = names
            .iter()
            .map(|n| {
                service
                    .submit(Request::SubmitBatch { session: n.clone(), updates: Vec::new() })
                    .unwrap()
            })
            .collect();
        let (mut ok, mut failed) = (0usize, 0usize);
        for t in tickets {
            match t.wait() {
                Ok(_) => ok += 1,
                Err(
                    ServeError::Engine(MwmError::BudgetExceeded { .. })
                    | ServeError::AdmissionDenied { .. },
                ) => failed += 1,
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!(ok >= 1, "the first reservation holds the whole remainder, so one epoch fits");
        assert!(failed >= 1, "the pool cannot fit all eight bootstraps");
        assert!(
            service.pool_used() <= limit + 8 * 2_048,
            "pool overran its hard cap: used {} vs limit {limit}",
            service.pool_used()
        );
        service.shutdown();
    }

    #[test]
    fn per_epoch_policy_budget_applies_through_intersect() {
        // An epoch_budget with a rounds cap must fail the bootstrap solve
        // (which needs many rounds) as a typed engine error.
        let strict = ServiceConfig {
            epoch_budget: ResourceBudget::unlimited().with_max_rounds(1),
            workers: 1,
            ..config()
        };
        let service = MatchingService::start(strict).unwrap();
        let base = base_graph(6, 30, 100);
        service.create_session("s", &base).unwrap();
        match service.submit_batch("s", Vec::new()) {
            Err(ServeError::Engine(MwmError::BudgetExceeded { resource, .. })) => {
                assert_eq!(resource, "rounds");
            }
            other => panic!("expected a rounds violation, got {other:?}"),
        }
        service.shutdown();
    }

    #[test]
    fn try_submit_reports_a_full_queue() {
        // One worker, tiny queue: keep the worker busy with a bootstrap on a
        // sizable graph, then overfill the queue with cheap queries.
        let cfg = ServiceConfig { workers: 1, queue_capacity: 2, ..config() };
        let service = MatchingService::start(cfg).unwrap();
        let base = base_graph(7, 400, 3_000);
        service.create_session("s", &base).unwrap();
        let bootstrap = service
            .submit(Request::SubmitBatch { session: "s".into(), updates: Vec::new() })
            .unwrap();
        let mut pending = Vec::new();
        let mut saw_full = false;
        for _ in 0..64 {
            match service.try_submit(Request::QueryWeight { session: "s".into() }) {
                Ok(t) => pending.push(t),
                Err(ServeError::QueueFull { capacity }) => {
                    assert_eq!(capacity, 2);
                    saw_full = true;
                    break;
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!(saw_full, "the bounded queue must eventually reject");
        assert!(bootstrap.wait().is_ok());
        for t in pending {
            assert!(t.wait().is_ok(), "queued queries are still answered");
        }
        service.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_work_and_rejects_new_submissions() {
        let service = MatchingService::start(config()).unwrap();
        let base = base_graph(8, 30, 90);
        service.create_session("s", &base).unwrap();
        let queued = service
            .submit(Request::SubmitBatch { session: "s".into(), updates: Vec::new() })
            .unwrap();
        service.shutdown();
        // The pre-shutdown job was drained and answered.
        assert!(matches!(queued.wait(), Ok(Response::EpochApplied { .. })));
    }

    #[test]
    fn invalid_service_configs_are_rejected() {
        assert!(MatchingService::start(ServiceConfig { workers: 0, ..config() }).is_err());
        assert!(MatchingService::start(ServiceConfig { queue_capacity: 0, ..config() }).is_err());
        let bad_session = DynamicConfig { dual_decay: 0.0, ..DynamicConfig::default() };
        assert!(MatchingService::start(ServiceConfig {
            session_defaults: bad_session,
            ..config()
        })
        .is_err());
    }

    #[test]
    fn wait_timeout_returns_the_ticket_until_the_answer_lands() {
        let (ticket, completer) = Ticket::new();
        // Nobody has answered: the deadline expires and the ticket survives.
        let ticket = match ticket.wait_timeout(Duration::from_millis(20)) {
            Err(t) => t,
            Ok(r) => panic!("unanswered ticket resolved early: {r:?}"),
        };
        assert!(!ticket.is_ready());
        completer.complete(Ok(Response::Created));
        match ticket.wait_timeout(Duration::from_secs(5)) {
            Ok(Ok(Response::Created)) => {}
            Ok(other) => panic!("expected Created, got {other:?}"),
            Err(_) => panic!("a completed ticket must not time out"),
        }
    }

    fn persist_config(tag: &str) -> (ServiceConfig, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("mwm-serve-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        (ServiceConfig { store_dir: Some(dir.clone()), workers: 2, ..config() }, dir)
    }

    #[test]
    fn hibernated_sessions_revive_bit_identically_under_a_resident_cap() {
        let (cfg, dir) = persist_config("cap");
        // Cap of 1 across 2 workers: every request to a non-resident session
        // forces a revive; with several sessions the LRU churns constantly.
        let cfg = ServiceConfig { max_resident_sessions: Some(1), ..cfg };
        let service = MatchingService::start(cfg).unwrap();
        let names = ["h-alpha", "h-beta", "h-gamma", "h-delta"];
        let mut oracles = Vec::new();
        for (i, name) in names.iter().enumerate() {
            let base = base_graph(40 + i as u64, 30, 90);
            service.create_session(name, &base).unwrap();
            let mut batches = Vec::new();
            service.submit_batch(name, Vec::new()).unwrap();
            for round in 0..3u64 {
                let b = batch(base.num_edges(), 30, 500 * i as u64 + round, 8);
                service.submit_batch(name, b.clone()).unwrap();
                batches.push(b);
            }
            oracles.push(serial_replay(&base, &batches));
        }
        for (name, oracle) in names.iter().zip(&oracles) {
            let stats = service.session_stats(name).unwrap();
            assert_eq!(stats.weight.to_bits(), oracle.weight().to_bits(), "{name} diverged");
            assert_eq!(stats.epochs, oracle.epochs());
            assert_eq!(
                stats.duals_checksum,
                oracle.duals().map(|d| d.fingerprint()).unwrap_or(0),
                "{name}: duals diverged across hibernate/revive"
            );
            let snap = service.matching(name).unwrap();
            let served: Vec<(usize, u64)> =
                snap.matching.iter().map(|(id, _, m)| (id, m)).collect();
            let direct: Vec<(usize, u64)> =
                oracle.matching().iter().map(|(id, _, m)| (id, m)).collect();
            assert_eq!(served, direct, "{name}: matching diverged");
        }
        // Re-querying every session under a cap of 1 per worker must have
        // churned hibernated sessions back in.
        assert!(service.revives() > 0, "a cap of 1 must force revives");
        assert!(!service.revive_latencies_ms().is_empty());
        // Every session stays listed even while hibernated.
        let mut listed = service.sessions();
        listed.sort();
        let mut want: Vec<String> = names.iter().map(|s| s.to_string()).collect();
        want.sort();
        assert_eq!(listed, want);
        service.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_restarts_a_service_from_its_store() {
        let (cfg, dir) = persist_config("recover");
        let base = base_graph(50, 30, 90);
        let mut batches = Vec::new();
        {
            let service = MatchingService::start(cfg.clone()).unwrap();
            service.create_session("r", &base).unwrap();
            service.submit_batch("r", Vec::new()).unwrap();
            for round in 0..2u64 {
                let b = batch(base.num_edges(), 30, 900 + round, 10);
                service.submit_batch("r", b.clone()).unwrap();
                batches.push(b);
            }
            // Simulated crash: leak the service so no shutdown checkpoint
            // runs — the store holds the creation-time image plus the WAL.
            std::mem::forget(service);
        }
        let recovered = MatchingService::recover(cfg).unwrap();
        assert_eq!(recovered.sessions(), vec!["r"]);
        let oracle = serial_replay(&base, &batches);
        let stats = recovered.session_stats("r").unwrap();
        assert_eq!(stats.weight.to_bits(), oracle.weight().to_bits());
        assert_eq!(stats.epochs, oracle.epochs());
        assert_eq!(stats.duals_checksum, oracle.duals().map(|d| d.fingerprint()).unwrap_or(0));
        // The recovered session keeps serving.
        recovered.submit_batch("r", batch(base.num_edges(), 30, 950, 6)).unwrap();
        recovered.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_torn_image_is_a_typed_corrupt_error() {
        let (cfg, dir) = persist_config("torn");
        {
            let service = MatchingService::start(cfg.clone()).unwrap();
            service.create_session("t", &base_graph(60, 20, 50)).unwrap();
            service.submit_batch("t", Vec::new()).unwrap();
            service.shutdown();
        }
        // Flip a payload bit in the (only) stored image.
        let img = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "img"))
            .expect("one image on disk");
        let mut bytes = std::fs::read(&img).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&img, &bytes).unwrap();
        match MatchingService::recover(cfg).map(|_| ()) {
            Err(ServeError::Corrupt { context }) => {
                assert!(context.contains("checksum"), "unexpected context: {context}")
            }
            Err(other) => panic!("expected Corrupt, got {other:?}"),
            Ok(()) => panic!("recover accepted a torn image"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn caps_without_a_store_are_rejected() {
        let cfg = ServiceConfig { max_resident_sessions: Some(4), ..config() };
        assert!(MatchingService::start(cfg).is_err());
        let cfg = ServiceConfig { hibernate_after: Some(Duration::from_secs(1)), ..config() };
        assert!(MatchingService::start(cfg).is_err());
    }

    #[test]
    fn compaction_through_the_service_keeps_the_session_serving() {
        let service = MatchingService::start(config()).unwrap();
        let base = base_graph(10, 40, 160);
        service.create_session("s", &base).unwrap();
        service.submit_batch("s", Vec::new()).unwrap();
        let b = batch(base.num_edges(), 40, 77, 30);
        service.submit_batch("s", b).unwrap();
        let before = service.session_stats("s").unwrap();
        let reclaimed = service.compact_session("s").unwrap();
        assert!(reclaimed > 0, "the batch deleted edges to reclaim");
        let after = service.session_stats("s").unwrap();
        assert_eq!(after.weight.to_bits(), before.weight.to_bits());
        // The renumbered session still accepts epochs.
        let more = batch(after.live_edges, 40, 78, 10);
        assert!(service.submit_batch("s", more).is_ok());
        service.shutdown();
    }
}
