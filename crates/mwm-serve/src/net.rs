//! The socket front door: a minimal Unix-domain (and TCP) server mapping
//! wire requests onto [`MatchingService::submit`], plus the matching client.
//!
//! Every message travels as one frame of the workspace's shared
//! length-prefixed codec ([`mwm_graph::wire`] — `u32` LE length + payload,
//! the same framing the out-of-core worker protocol uses). Frame payloads
//! are built from the [`mwm_persist::codec`] field primitives, so graphs,
//! update batches, configs and ledger rows travel bit-exactly:
//!
//! ```text
//! request   tag u8 | session str | body
//!             1 CreateSession   body = graph | has_config u8 | config?
//!             2 DropSession     body = —
//!             3 SubmitBatch     body = no_wait u8 | updates
//!             4 QueryMatching   body = —
//!             5 QueryWeight     body = —
//!             6 SnapshotStats   body = —
//!             7 CompactSession  body = —
//!             8 Metrics         body = —   (session must be empty)
//! response  0x80+tag on success (same numbering), body per variant
//!           0xFF on error: code u8 | a u64 | b u64 | msg str
//!             1 UnknownSession        msg = session
//!             2 SessionExists         msg = session
//!             3 QueueFull             a = capacity
//!             4 ServiceClosed
//!             5 AdmissionDenied       a = used, b = limit
//!             6 Engine                msg = display text
//!             7 Protocol              msg = expected variant
//!             8 Corrupt               msg = context
//!             9 Persist               msg = context
//!            10 Timeout              a = deadline ms
//!            11 Wire                  msg = context
//! ```
//!
//! `SubmitBatch` carries a `no_wait` flag: set, the server uses
//! [`MatchingService::try_submit`], so a full worker queue comes back as a
//! typed [`ServeError::QueueFull`] over the wire instead of blocking the
//! connection. Each request is answered within the server's per-request
//! deadline or fails as [`ServeError::Timeout`] (the request itself may
//! still commit — the deadline bounds the wait, not the work).
//!
//! `Metrics` is served by the connection thread itself from the process-wide
//! `mwm_obs` registry — it never enters the service queue, so a scrape
//! works even when every worker is busy or the admission pool is exhausted.
//!
//! One thread per connection, requests on a connection processed strictly
//! in order (pipelining is the service's job — open more connections for
//! parallelism). Malformed frames are answered with a typed `Corrupt` error
//! and the connection stays up; transport failures close it.

use std::io::{BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use mwm_core::MwmError;
use mwm_dynamic::{DynamicConfig, EpochStats};
use mwm_graph::{read_frame, write_frame, Edge, Graph, GraphUpdate};
use mwm_obs::{HistogramSnapshot, MetricEntry, MetricValue, MetricsSnapshot};
use mwm_persist::codec::{
    decode_config, decode_graph, decode_stats, decode_updates, encode_config, encode_graph,
    encode_stats, encode_updates, u32_len, ByteReader, ByteWriter,
};
use mwm_persist::PersistError;

use crate::{MatchingService, Request, Response, ServeError, SessionStats};

const REQ_CREATE: u8 = 1;
const REQ_DROP: u8 = 2;
const REQ_SUBMIT: u8 = 3;
const REQ_MATCHING: u8 = 4;
const REQ_WEIGHT: u8 = 5;
const REQ_STATS: u8 = 6;
const REQ_COMPACT: u8 = 7;
const REQ_METRICS: u8 = 8;
const RESP_OK_BASE: u8 = 0x80;
const RESP_ERR: u8 = 0xFF;

/// How long the server waits on a ticket before answering
/// [`ServeError::Timeout`].
pub const DEFAULT_REQUEST_TIMEOUT: Duration = Duration::from_secs(30);

/// How often an idle connection thread rechecks the server's shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(200);

// ---- wire codec ----------------------------------------------------------

/// A decoded wire request (the server-side mirror of [`NetClient`]'s frames).
enum WireRequest {
    Create { session: String, base: Graph, config: Option<DynamicConfig> },
    Drop { session: String },
    Submit { session: String, no_wait: bool, updates: Vec<GraphUpdate> },
    Matching { session: String },
    Weight { session: String },
    Stats { session: String },
    Compact { session: String },
    Metrics,
}

fn decode_request(payload: &[u8]) -> Result<WireRequest, String> {
    let mut r = ByteReader::new(payload);
    let tag = r.u8("request tag")?;
    let session = r.str("request session")?.to_string();
    let req = match tag {
        REQ_CREATE => {
            let base = decode_graph(&mut r)?;
            let config = match r.u8("config flag")? {
                0 => None,
                1 => Some(decode_config(&mut r)?),
                b => return Err(format!("config flag has invalid byte {b}")),
            };
            WireRequest::Create { session, base, config }
        }
        REQ_DROP => WireRequest::Drop { session },
        REQ_SUBMIT => {
            let no_wait = match r.u8("no_wait flag")? {
                0 => false,
                1 => true,
                b => return Err(format!("no_wait flag has invalid byte {b}")),
            };
            WireRequest::Submit { session, no_wait, updates: decode_updates(&mut r)? }
        }
        REQ_MATCHING => WireRequest::Matching { session },
        REQ_WEIGHT => WireRequest::Weight { session },
        REQ_STATS => WireRequest::Stats { session },
        REQ_COMPACT => WireRequest::Compact { session },
        REQ_METRICS => {
            if !session.is_empty() {
                return Err(format!("metrics request names a session ({session:?})"));
            }
            WireRequest::Metrics
        }
        tag => return Err(format!("unknown request tag {tag}")),
    };
    r.finish("wire request")?;
    Ok(req)
}

fn encode_session_stats(w: &mut ByteWriter, s: &SessionStats) -> Result<(), PersistError> {
    w.str(&s.session)?;
    w.u64(s.epochs as u64);
    w.u64(s.version);
    w.f64(s.weight);
    w.u64(s.matching_edges as u64);
    w.u64(s.live_edges as u64);
    w.u64(s.live_vertices as u64);
    w.u64(s.items_streamed as u64);
    w.u64(s.repairs as u64);
    w.u64(s.warm_resolves as u64);
    w.u64(s.rebuilds as u64);
    w.u64(s.revives as u64);
    w.u64(s.duals_checksum);
    Ok(())
}

fn decode_session_stats(r: &mut ByteReader<'_>) -> Result<SessionStats, String> {
    Ok(SessionStats {
        session: r.str("stats session")?.to_string(),
        epochs: r.u64("stats epochs")? as usize,
        version: r.u64("stats version")?,
        weight: r.f64("stats weight")?,
        matching_edges: r.u64("stats matching edges")? as usize,
        live_edges: r.u64("stats live edges")? as usize,
        live_vertices: r.u64("stats live vertices")? as usize,
        items_streamed: r.u64("stats items streamed")? as usize,
        repairs: r.u64("stats repairs")? as usize,
        warm_resolves: r.u64("stats warm resolves")? as usize,
        rebuilds: r.u64("stats rebuilds")? as usize,
        revives: r.u64("stats revives")? as usize,
        duals_checksum: r.u64("stats duals checksum")?,
    })
}

fn encode_error(w: &mut ByteWriter, e: &ServeError) -> Result<(), PersistError> {
    w.u8(RESP_ERR);
    let (code, a, b, msg): (u8, u64, u64, String) = match e {
        ServeError::UnknownSession { session } => (1, 0, 0, session.clone()),
        ServeError::SessionExists { session } => (2, 0, 0, session.clone()),
        ServeError::QueueFull { capacity } => (3, *capacity as u64, 0, String::new()),
        ServeError::ServiceClosed => (4, 0, 0, String::new()),
        ServeError::AdmissionDenied { used, limit } => {
            (5, *used as u64, *limit as u64, String::new())
        }
        ServeError::Engine(err) => (6, 0, 0, format!("{err}")),
        ServeError::Protocol { expected } => (7, 0, 0, (*expected).to_string()),
        ServeError::Corrupt { context } => (8, 0, 0, context.clone()),
        ServeError::Persist { context } => (9, 0, 0, context.clone()),
        ServeError::Timeout { after_ms } => (10, *after_ms, 0, String::new()),
        ServeError::Wire { context } => (11, 0, 0, context.clone()),
    };
    w.u8(code);
    w.u64(a);
    w.u64(b);
    w.str(&msg)?;
    Ok(())
}

fn decode_error(r: &mut ByteReader<'_>) -> Result<ServeError, String> {
    let code = r.u8("error code")?;
    let a = r.u64("error a")?;
    let b = r.u64("error b")?;
    let msg = r.str("error message")?.to_string();
    Ok(match code {
        1 => ServeError::UnknownSession { session: msg },
        2 => ServeError::SessionExists { session: msg },
        3 => ServeError::QueueFull { capacity: a as usize },
        4 => ServeError::ServiceClosed,
        5 => ServeError::AdmissionDenied { used: a as usize, limit: b as usize },
        // The concrete engine error type does not cross the wire; its
        // display text does.
        6 => ServeError::Engine(MwmError::InvalidInput { reason: msg }),
        7 => ServeError::Protocol { expected: "response (see server log)" },
        8 => ServeError::Corrupt { context: msg },
        9 => ServeError::Persist { context: msg },
        10 => ServeError::Timeout { after_ms: a },
        11 => ServeError::Wire { context: msg },
        code => return Err(format!("unknown error code {code}")),
    })
}

fn encode_response(result: &Result<Response, ServeError>) -> Result<Vec<u8>, PersistError> {
    let mut w = ByteWriter::new();
    match result {
        Ok(Response::Created) => w.u8(RESP_OK_BASE + REQ_CREATE),
        Ok(Response::Dropped { epochs }) => {
            w.u8(RESP_OK_BASE + REQ_DROP);
            w.u64(*epochs as u64);
        }
        Ok(Response::EpochApplied { stats }) => {
            w.u8(RESP_OK_BASE + REQ_SUBMIT);
            encode_stats(&mut w, stats);
        }
        Ok(Response::Matching { snapshot }) => {
            w.u8(RESP_OK_BASE + REQ_MATCHING);
            w.u64(snapshot.epoch as u64);
            w.u64(snapshot.version);
            w.f64(snapshot.weight);
            let entries: Vec<_> = snapshot.matching.iter().collect();
            w.u32(u32_len(entries.len(), "matching entries")?);
            for (id, e, mult) in entries {
                w.u64(id as u64);
                w.u32(e.u);
                w.u32(e.v);
                w.f64(e.w);
                w.u64(mult);
            }
        }
        Ok(Response::Weight { epoch, version, weight }) => {
            w.u8(RESP_OK_BASE + REQ_WEIGHT);
            w.u64(*epoch as u64);
            w.u64(*version);
            w.f64(*weight);
        }
        Ok(Response::Stats { stats }) => {
            w.u8(RESP_OK_BASE + REQ_STATS);
            encode_session_stats(&mut w, stats)?;
        }
        Ok(Response::Compacted { reclaimed }) => {
            w.u8(RESP_OK_BASE + REQ_COMPACT);
            w.u64(*reclaimed as u64);
        }
        Err(e) => encode_error(&mut w, e)?,
    }
    Ok(w.into_bytes())
}

/// Encodes a reply frame, falling back to a short typed error frame if the
/// real reply does not fit the codec (e.g. a string over the `u32` length
/// prefix). The fallback is a few hundred bytes at most, so its own encode
/// cannot fail.
fn encode_response_or_fallback(result: &Result<Response, ServeError>) -> Vec<u8> {
    encode_response(result).unwrap_or_else(|e| {
        let mut context = format!("encoding response: {e}");
        context.truncate(256);
        encode_response(&Err(ServeError::Corrupt { context }))
            .expect("bounded fallback frame encodes")
    })
}

// ---- metrics snapshot codec ----------------------------------------------

const METRIC_COUNTER: u8 = 1;
const METRIC_GAUGE: u8 = 2;
const METRIC_HISTOGRAM: u8 = 3;

/// Encodes a `Metrics` success frame: count-prefixed `(name, kind, value)`
/// entries in the snapshot's (sorted) order.
fn encode_metrics_frame(snapshot: &MetricsSnapshot) -> Result<Vec<u8>, PersistError> {
    let mut w = ByteWriter::new();
    w.u8(RESP_OK_BASE + REQ_METRICS);
    w.u32(u32_len(snapshot.entries.len(), "metric entries")?);
    for entry in &snapshot.entries {
        w.str(&entry.name)?;
        match &entry.value {
            MetricValue::Counter(v) => {
                w.u8(METRIC_COUNTER);
                w.u64(*v);
            }
            MetricValue::Gauge(v) => {
                w.u8(METRIC_GAUGE);
                w.u64(*v as u64);
            }
            MetricValue::Histogram(h) => {
                w.u8(METRIC_HISTOGRAM);
                w.u32(u32_len(h.bounds.len(), "histogram bounds")?);
                for &b in &h.bounds {
                    w.f64(b);
                }
                for &c in &h.buckets {
                    w.u64(c);
                }
                w.u64(h.count);
                w.f64(h.sum);
            }
        }
    }
    Ok(w.into_bytes())
}

fn decode_metrics_body(r: &mut ByteReader<'_>) -> Result<MetricsSnapshot, String> {
    let n = r.u32("metric count")? as usize;
    if n > 1 << 20 {
        return Err(format!("metric count {n} over sanity cap"));
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str("metric name")?.to_string();
        let value = match r.u8("metric kind")? {
            METRIC_COUNTER => MetricValue::Counter(r.u64("counter value")?),
            METRIC_GAUGE => MetricValue::Gauge(r.u64("gauge value")? as i64),
            METRIC_HISTOGRAM => {
                let bn = r.u32("histogram bound count")? as usize;
                if bn > 1 << 16 {
                    return Err(format!("histogram bound count {bn} over sanity cap"));
                }
                let mut bounds = Vec::with_capacity(bn);
                for _ in 0..bn {
                    bounds.push(r.f64("histogram bound")?);
                }
                let mut buckets = Vec::with_capacity(bn + 1);
                for _ in 0..bn + 1 {
                    buckets.push(r.u64("histogram bucket")?);
                }
                MetricValue::Histogram(HistogramSnapshot {
                    bounds,
                    buckets,
                    count: r.u64("histogram count")?,
                    sum: r.f64("histogram sum")?,
                })
            }
            kind => return Err(format!("unknown metric kind {kind}")),
        };
        entries.push(MetricEntry { name, value });
    }
    Ok(MetricsSnapshot { entries })
}

/// A committed matching as decoded from the wire (the remote analogue of
/// [`mwm_dynamic::CommittedSnapshot`], with the matching flattened into
/// `(edge id, edge, multiplicity)` rows).
#[derive(Clone, Debug, PartialEq)]
pub struct RemoteMatching {
    /// Committed epochs.
    pub epoch: usize,
    /// Overlay version at the commit.
    pub version: u64,
    /// Committed weight (bit-exact).
    pub weight: f64,
    /// The matched edges, sorted by edge id.
    pub entries: Vec<(usize, Edge, u64)>,
}

/// A decoded success response (client side).
enum WireResponse {
    Created,
    Dropped { epochs: usize },
    EpochApplied { stats: EpochStats },
    Matching(RemoteMatching),
    Weight { epoch: usize, version: u64, weight: f64 },
    Stats { stats: SessionStats },
    Compacted { reclaimed: usize },
    Metrics(MetricsSnapshot),
}

fn decode_response(payload: &[u8]) -> Result<WireResponse, ServeError> {
    let corrupt = |what: String| ServeError::Corrupt { context: format!("wire response: {what}") };
    let mut r = ByteReader::new(payload);
    let tag = r.u8("response tag").map_err(corrupt)?;
    if tag == RESP_ERR {
        let err = decode_error(&mut r).map_err(corrupt)?;
        r.finish("wire error").map_err(corrupt)?;
        return Err(err);
    }
    let resp = match tag.wrapping_sub(RESP_OK_BASE) {
        REQ_CREATE => WireResponse::Created,
        REQ_DROP => {
            WireResponse::Dropped { epochs: r.u64("dropped epochs").map_err(corrupt)? as usize }
        }
        REQ_SUBMIT => WireResponse::EpochApplied { stats: decode_stats(&mut r).map_err(corrupt)? },
        REQ_MATCHING => {
            let epoch = r.u64("matching epoch").map_err(corrupt)? as usize;
            let version = r.u64("matching version").map_err(corrupt)?;
            let weight = r.f64("matching weight").map_err(corrupt)?;
            let n = r.u32("matching count").map_err(corrupt)? as usize;
            let mut entries = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                let id = r.u64("entry id").map_err(corrupt)? as usize;
                let e = Edge {
                    u: r.u32("entry u").map_err(corrupt)?,
                    v: r.u32("entry v").map_err(corrupt)?,
                    w: r.f64("entry weight").map_err(corrupt)?,
                };
                let mult = r.u64("entry multiplicity").map_err(corrupt)?;
                entries.push((id, e, mult));
            }
            WireResponse::Matching(RemoteMatching { epoch, version, weight, entries })
        }
        REQ_WEIGHT => WireResponse::Weight {
            epoch: r.u64("weight epoch").map_err(corrupt)? as usize,
            version: r.u64("weight version").map_err(corrupt)?,
            weight: r.f64("weight value").map_err(corrupt)?,
        },
        REQ_STATS => WireResponse::Stats { stats: decode_session_stats(&mut r).map_err(corrupt)? },
        REQ_COMPACT => WireResponse::Compacted {
            reclaimed: r.u64("compacted count").map_err(corrupt)? as usize,
        },
        REQ_METRICS => WireResponse::Metrics(decode_metrics_body(&mut r).map_err(corrupt)?),
        _ => return Err(corrupt(format!("unknown response tag {tag:#04x}"))),
    };
    r.finish("wire response").map_err(corrupt)?;
    Ok(resp)
}

// ---- server --------------------------------------------------------------

/// Where the accept loop listens.
enum Endpoint {
    Uds(PathBuf),
    Tcp(SocketAddr),
}

/// The socket server: an accept loop plus one thread per live connection,
/// all dispatching onto one shared [`MatchingService`].
///
/// Shutdown ([`SocketServer::shutdown`] or drop) stops accepting and signals
/// connection threads; an idle connection notices within its poll interval,
/// a connection blocked mid-request finishes that request first.
pub struct SocketServer {
    closed: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    endpoint: Endpoint,
}

impl SocketServer {
    /// Binds a Unix-domain socket at `path` (removing any stale socket file)
    /// and starts serving `service` with the default request deadline.
    pub fn bind_uds(
        service: Arc<MatchingService>,
        path: impl AsRef<Path>,
    ) -> std::io::Result<SocketServer> {
        Self::bind_uds_with(service, path, DEFAULT_REQUEST_TIMEOUT)
    }

    /// [`SocketServer::bind_uds`] with an explicit per-request deadline.
    pub fn bind_uds_with(
        service: Arc<MatchingService>,
        path: impl AsRef<Path>,
        request_timeout: Duration,
    ) -> std::io::Result<SocketServer> {
        let path = path.as_ref().to_path_buf();
        std::fs::remove_file(&path).ok();
        let listener = UnixListener::bind(&path)?;
        let closed = Arc::new(AtomicBool::new(false));
        let accept_closed = Arc::clone(&closed);
        let accept_handle = std::thread::Builder::new()
            .name("mwm-net-accept-uds".to_string())
            .spawn(move || {
                while let Ok((stream, _)) = listener.accept() {
                    if accept_closed.load(Ordering::Acquire) {
                        break;
                    }
                    spawn_conn_uds(stream, Arc::clone(&service), request_timeout, &accept_closed);
                }
            })?;
        Ok(SocketServer {
            closed,
            accept_handle: Some(accept_handle),
            endpoint: Endpoint::Uds(path),
        })
    }

    /// Binds a TCP listener at `addr` (e.g. `"127.0.0.1:0"`) and starts
    /// serving `service` with the default request deadline.
    pub fn bind_tcp(service: Arc<MatchingService>, addr: &str) -> std::io::Result<SocketServer> {
        Self::bind_tcp_with(service, addr, DEFAULT_REQUEST_TIMEOUT)
    }

    /// [`SocketServer::bind_tcp`] with an explicit per-request deadline.
    pub fn bind_tcp_with(
        service: Arc<MatchingService>,
        addr: &str,
        request_timeout: Duration,
    ) -> std::io::Result<SocketServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let closed = Arc::new(AtomicBool::new(false));
        let accept_closed = Arc::clone(&closed);
        let accept_handle = std::thread::Builder::new()
            .name("mwm-net-accept-tcp".to_string())
            .spawn(move || {
                while let Ok((stream, _)) = listener.accept() {
                    if accept_closed.load(Ordering::Acquire) {
                        break;
                    }
                    spawn_conn_tcp(stream, Arc::clone(&service), request_timeout, &accept_closed);
                }
            })?;
        Ok(SocketServer {
            closed,
            accept_handle: Some(accept_handle),
            endpoint: Endpoint::Tcp(local),
        })
    }

    /// The bound TCP address (`None` for a Unix-domain server). Useful after
    /// binding port 0.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        match &self.endpoint {
            Endpoint::Tcp(addr) => Some(*addr),
            Endpoint::Uds(_) => None,
        }
    }

    /// Stops accepting connections and signals connection threads to exit.
    pub fn shutdown(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if self.closed.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        match &self.endpoint {
            Endpoint::Uds(path) => {
                UnixStream::connect(path).ok();
            }
            Endpoint::Tcp(addr) => {
                TcpStream::connect_timeout(addr, Duration::from_millis(250)).ok();
            }
        }
        if let Some(handle) = self.accept_handle.take() {
            handle.join().ok();
        }
        if let Endpoint::Uds(path) = &self.endpoint {
            std::fs::remove_file(path).ok();
        }
    }
}

impl Drop for SocketServer {
    fn drop(&mut self) {
        self.close();
    }
}

fn spawn_conn_uds(
    stream: UnixStream,
    service: Arc<MatchingService>,
    timeout: Duration,
    closed: &Arc<AtomicBool>,
) {
    stream.set_read_timeout(Some(IDLE_POLL)).ok();
    let Ok(reader) = stream.try_clone() else { return };
    let closed = Arc::clone(closed);
    std::thread::Builder::new()
        .name("mwm-net-conn".to_string())
        .spawn(move || serve_conn(BufReader::new(reader), stream, &service, timeout, &closed))
        .ok();
}

fn spawn_conn_tcp(
    stream: TcpStream,
    service: Arc<MatchingService>,
    timeout: Duration,
    closed: &Arc<AtomicBool>,
) {
    stream.set_read_timeout(Some(IDLE_POLL)).ok();
    stream.set_nodelay(true).ok();
    let Ok(reader) = stream.try_clone() else { return };
    let closed = Arc::clone(closed);
    std::thread::Builder::new()
        .name("mwm-net-conn".to_string())
        .spawn(move || serve_conn(BufReader::new(reader), stream, &service, timeout, &closed))
        .ok();
}

/// One connection: frames in, frames out, strictly in order. A read timeout
/// at a frame boundary is just the idle poll (recheck the shutdown flag); a
/// clean EOF or any transport failure ends the connection.
fn serve_conn(
    mut reader: impl Read,
    mut writer: impl Write,
    service: &MatchingService,
    timeout: Duration,
    closed: &AtomicBool,
) {
    loop {
        match read_frame(&mut reader) {
            Ok(None) => break,
            Ok(Some(payload)) => {
                mwm_obs::counter!("net_requests_total").inc();
                let frame = match decode_request(&payload) {
                    // Metrics is answered right here from the global registry,
                    // bypassing the service queue: a scrape must succeed even
                    // when workers are saturated.
                    Ok(WireRequest::Metrics) => encode_metrics_frame(&mwm_obs::snapshot())
                        .unwrap_or_else(|e| encode_response_or_fallback(&Err(ServeError::from(e)))),
                    Ok(req) => {
                        let reply = dispatch(service, req, timeout);
                        if matches!(reply, Err(ServeError::Timeout { .. })) {
                            mwm_obs::counter!("net_timeouts_total").inc();
                        }
                        encode_response_or_fallback(&reply)
                    }
                    Err(e) => encode_response_or_fallback(&Err(ServeError::Corrupt {
                        context: format!("wire request: {e}"),
                    })),
                };
                let sent = write_frame(&mut writer, &frame).and_then(|()| writer.flush());
                if sent.is_err() {
                    break;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if closed.load(Ordering::Acquire) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

fn dispatch(
    service: &MatchingService,
    req: WireRequest,
    timeout: Duration,
) -> Result<Response, ServeError> {
    let (no_wait, request) = match req {
        WireRequest::Create { session, base, config } => {
            (false, Request::CreateSession { session, base, config })
        }
        WireRequest::Drop { session } => (false, Request::DropSession { session }),
        WireRequest::Submit { session, no_wait, updates } => {
            (no_wait, Request::SubmitBatch { session, updates })
        }
        WireRequest::Matching { session } => (false, Request::QueryMatching { session }),
        WireRequest::Weight { session } => (false, Request::QueryWeight { session }),
        WireRequest::Stats { session } => (false, Request::SnapshotStats { session }),
        WireRequest::Compact { session } => (false, Request::CompactSession { session }),
        // Never queued: serve_conn answers Metrics before calling dispatch.
        WireRequest::Metrics => {
            return Err(ServeError::Protocol { expected: "Metrics handled at connection layer" })
        }
    };
    let ticket = if no_wait { service.try_submit(request)? } else { service.submit(request)? };
    match ticket.wait_timeout(timeout) {
        Ok(result) => result,
        // Abandoning the ticket here is safe by construction: the queued work
        // still runs to completion on its worker, and the admission-pool
        // reserve/settle pair both happen inside the worker's
        // `handle_request`, so the reservation is refunded exactly once
        // whether or not anyone is still waiting. The late result lands in
        // the ticket's one-shot slot and is dropped with it — it can never be
        // written to the connection, because this thread is the only writer
        // and it has already answered this request with `Timeout` (see the
        // timeout-then-reuse regression test).
        Err(_still_pending) => Err(ServeError::Timeout { after_ms: timeout.as_millis() as u64 }),
    }
}

// ---- client --------------------------------------------------------------

/// A blocking wire client for [`SocketServer`], one request at a time.
/// Transport failures come back as [`ServeError::Wire`]; everything the
/// server rejects arrives as the same typed [`ServeError`] the in-process
/// API would have returned.
pub struct NetClient {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
}

impl NetClient {
    /// Connects to a Unix-domain [`SocketServer`].
    pub fn connect_uds(path: impl AsRef<Path>) -> std::io::Result<NetClient> {
        let stream = UnixStream::connect(path)?;
        let reader = stream.try_clone()?;
        Ok(NetClient { reader: BufReader::new(Box::new(reader)), writer: Box::new(stream) })
    }

    /// Connects to a TCP [`SocketServer`].
    pub fn connect_tcp(addr: SocketAddr) -> std::io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = stream.try_clone()?;
        Ok(NetClient { reader: BufReader::new(Box::new(reader)), writer: Box::new(stream) })
    }

    fn call(&mut self, frame: &[u8]) -> Result<WireResponse, ServeError> {
        let wire =
            |what: &str, e: std::io::Error| ServeError::Wire { context: format!("{what}: {e}") };
        write_frame(&mut self.writer, frame).map_err(|e| wire("sending request", e))?;
        self.writer.flush().map_err(|e| wire("flushing request", e))?;
        match read_frame(&mut self.reader) {
            Ok(Some(payload)) => decode_response(&payload),
            Ok(None) => Err(ServeError::Wire { context: "server closed the connection".into() }),
            Err(e) => Err(wire("reading response", e)),
        }
    }

    fn header(tag: u8, session: &str) -> Result<ByteWriter, ServeError> {
        let mut w = ByteWriter::new();
        w.u8(tag);
        w.str(session)?;
        Ok(w)
    }

    /// Creates a session with the server's default configuration.
    pub fn create_session(&mut self, session: &str, base: &Graph) -> Result<(), ServeError> {
        self.create_session_with(session, base, None)
    }

    /// Creates a session, optionally overriding its configuration.
    pub fn create_session_with(
        &mut self,
        session: &str,
        base: &Graph,
        config: Option<DynamicConfig>,
    ) -> Result<(), ServeError> {
        let mut w = Self::header(REQ_CREATE, session)?;
        encode_graph(&mut w, base)?;
        match &config {
            None => w.u8(0),
            Some(c) => {
                w.u8(1);
                encode_config(&mut w, c);
            }
        }
        match self.call(&w.into_bytes())? {
            WireResponse::Created => Ok(()),
            _ => Err(ServeError::Protocol { expected: "Created" }),
        }
    }

    /// Drops a session; returns its committed epoch count.
    pub fn drop_session(&mut self, session: &str) -> Result<usize, ServeError> {
        match self.call(&Self::header(REQ_DROP, session)?.into_bytes())? {
            WireResponse::Dropped { epochs } => Ok(epochs),
            _ => Err(ServeError::Protocol { expected: "Dropped" }),
        }
    }

    fn submit_inner(
        &mut self,
        session: &str,
        updates: &[GraphUpdate],
        no_wait: bool,
    ) -> Result<EpochStats, ServeError> {
        let mut w = Self::header(REQ_SUBMIT, session)?;
        w.u8(u8::from(no_wait));
        encode_updates(&mut w, updates)?;
        match self.call(&w.into_bytes())? {
            WireResponse::EpochApplied { stats } => Ok(stats),
            _ => Err(ServeError::Protocol { expected: "EpochApplied" }),
        }
    }

    /// Applies one epoch of updates, blocking for queue space server-side.
    pub fn submit_batch(
        &mut self,
        session: &str,
        updates: &[GraphUpdate],
    ) -> Result<EpochStats, ServeError> {
        self.submit_inner(session, updates, false)
    }

    /// Non-blocking submit: a full worker queue comes back as a typed
    /// [`ServeError::QueueFull`] instead of waiting.
    pub fn try_submit_batch(
        &mut self,
        session: &str,
        updates: &[GraphUpdate],
    ) -> Result<EpochStats, ServeError> {
        self.submit_inner(session, updates, true)
    }

    /// The session's last committed matching.
    pub fn matching(&mut self, session: &str) -> Result<RemoteMatching, ServeError> {
        match self.call(&Self::header(REQ_MATCHING, session)?.into_bytes())? {
            WireResponse::Matching(m) => Ok(m),
            _ => Err(ServeError::Protocol { expected: "Matching" }),
        }
    }

    /// The session's committed weight with its epoch/version coordinates.
    pub fn weight(&mut self, session: &str) -> Result<(usize, u64, f64), ServeError> {
        match self.call(&Self::header(REQ_WEIGHT, session)?.into_bytes())? {
            WireResponse::Weight { epoch, version, weight } => Ok((epoch, version, weight)),
            _ => Err(ServeError::Protocol { expected: "Weight" }),
        }
    }

    /// The session's summary statistics.
    pub fn session_stats(&mut self, session: &str) -> Result<SessionStats, ServeError> {
        match self.call(&Self::header(REQ_STATS, session)?.into_bytes())? {
            WireResponse::Stats { stats } => Ok(stats),
            _ => Err(ServeError::Protocol { expected: "Stats" }),
        }
    }

    /// Compacts the session's journal; returns the reclaimed edge count.
    pub fn compact_session(&mut self, session: &str) -> Result<usize, ServeError> {
        match self.call(&Self::header(REQ_COMPACT, session)?.into_bytes())? {
            WireResponse::Compacted { reclaimed } => Ok(reclaimed),
            _ => Err(ServeError::Protocol { expected: "Compacted" }),
        }
    }

    /// Scrapes the server's process-wide metrics registry. Served by the
    /// connection thread, so it succeeds even when the service queue is full.
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, ServeError> {
        match self.call(&Self::header(REQ_METRICS, "")?.into_bytes())? {
            WireResponse::Metrics(snapshot) => Ok(snapshot),
            _ => Err(ServeError::Protocol { expected: "Metrics" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceConfig;
    use mwm_dynamic::DynamicConfig;

    fn small_graph() -> Graph {
        let mut g = Graph::new(8);
        g.add_edge(0, 1, 3.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(2, 3, 4.0);
        g.add_edge(4, 5, 1.5);
        g.add_edge(6, 7, 2.5);
        g
    }

    fn service() -> Arc<MatchingService> {
        Arc::new(
            MatchingService::start(ServiceConfig {
                workers: 2,
                session_defaults: DynamicConfig { eps: 0.25, seed: 7, ..Default::default() },
                ..Default::default()
            })
            .unwrap(),
        )
    }

    fn exercise(client: &mut NetClient, service: &MatchingService) {
        let base = small_graph();
        client.create_session("net-a", &base).unwrap();
        let stats = client.submit_batch("net-a", &[]).unwrap();
        assert_eq!(stats.epoch, 0);
        let (epoch, _version, weight) = client.weight("net-a").unwrap();
        assert_eq!(epoch, 1);
        assert!(weight > 0.0);

        // The wire answer is bit-identical to the in-process answer.
        let local = service.matching("net-a").unwrap();
        let remote = client.matching("net-a").unwrap();
        assert_eq!(remote.weight.to_bits(), local.weight.to_bits());
        let local_entries: Vec<(usize, u64)> =
            local.matching.iter().map(|(id, _, m)| (id, m)).collect();
        let remote_entries: Vec<(usize, u64)> =
            remote.entries.iter().map(|&(id, _, m)| (id, m)).collect();
        assert_eq!(remote_entries, local_entries);

        let s = client.session_stats("net-a").unwrap();
        assert_eq!(s.session, "net-a");
        assert_eq!(s.epochs, 1);
        assert_eq!(s.weight.to_bits(), weight.to_bits());

        // Typed errors cross the wire.
        assert_eq!(
            client.weight("ghost"),
            Err(ServeError::UnknownSession { session: "ghost".into() })
        );
        assert_eq!(
            client.create_session("net-a", &base),
            Err(ServeError::SessionExists { session: "net-a".into() })
        );

        client.submit_batch("net-a", &[GraphUpdate::InsertEdge { u: 0, v: 7, w: 9.0 }]).unwrap();
        let reclaimed = client.compact_session("net-a");
        assert!(reclaimed.is_ok());
        assert_eq!(client.drop_session("net-a").unwrap(), 2);
    }

    #[test]
    fn uds_round_trip_matches_the_in_process_api() {
        let service = service();
        let path = std::env::temp_dir().join(format!("mwm-net-uds-{}.sock", std::process::id()));
        let server = SocketServer::bind_uds(Arc::clone(&service), &path).unwrap();
        let mut client = NetClient::connect_uds(&path).unwrap();
        exercise(&mut client, &service);
        drop(client);
        server.shutdown();
    }

    #[test]
    fn tcp_round_trip_matches_the_in_process_api() {
        let service = service();
        let server = SocketServer::bind_tcp(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let addr = server.tcp_addr().expect("tcp endpoint");
        let mut client = NetClient::connect_tcp(addr).unwrap();
        exercise(&mut client, &service);
        drop(client);
        server.shutdown();
    }

    #[test]
    fn admission_denied_is_a_typed_wire_error() {
        // A pool far too small for a bootstrap: after the floor charges
        // exhaust it, the wire client sees AdmissionDenied with the counters.
        let service = Arc::new(
            MatchingService::start(ServiceConfig {
                workers: 1,
                max_streamed_items: Some(3),
                session_defaults: DynamicConfig { eps: 0.25, seed: 7, ..Default::default() },
                ..Default::default()
            })
            .unwrap(),
        );
        let server = SocketServer::bind_tcp(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let mut client = NetClient::connect_tcp(server.tcp_addr().unwrap()).unwrap();
        client.create_session("pool", &small_graph()).unwrap();
        let mut denied = false;
        for _ in 0..20 {
            match client.submit_batch("pool", &[GraphUpdate::InsertEdge { u: 0, v: 3, w: 1.0 }]) {
                Err(ServeError::AdmissionDenied { used, limit }) => {
                    assert!(used >= limit);
                    assert_eq!(limit, 3);
                    denied = true;
                    break;
                }
                Ok(_) | Err(ServeError::Engine(_)) => {}
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!(denied, "the drained pool must deny admission over the wire");
        drop(client);
        server.shutdown();
    }

    #[test]
    fn queue_full_is_a_typed_wire_error_under_no_wait() {
        // One worker with a single-slot queue, kept busy by a slow bootstrap
        // submitted from a second connection: no_wait submits must
        // eventually bounce with QueueFull instead of blocking.
        let service = Arc::new(
            MatchingService::start(ServiceConfig {
                workers: 1,
                queue_capacity: 1,
                session_defaults: DynamicConfig { eps: 0.25, seed: 7, ..Default::default() },
                ..Default::default()
            })
            .unwrap(),
        );
        let server = SocketServer::bind_tcp(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let addr = server.tcp_addr().unwrap();
        let mut setup = NetClient::connect_tcp(addr).unwrap();
        let mut big = Graph::new(400);
        for i in 0..399u32 {
            big.add_edge(i, i + 1, 1.0 + f64::from(i % 7));
        }
        setup.create_session("busy", &big).unwrap();
        setup.submit_batch("busy", &[]).unwrap();

        // Two filler connections keep the worker executing one batch while
        // the next sits in the single queue slot; the no_wait prober must
        // then land on a full queue. Each filler batch reweights a stretch
        // of the path so every epoch does real work.
        let filler = move |seed: u32| {
            let mut c = NetClient::connect_tcp(addr).unwrap();
            for round in 0..60u32 {
                let updates: Vec<GraphUpdate> = (0..50)
                    .map(|i| GraphUpdate::ReweightEdge {
                        id: ((seed + round + i) % 399) as usize,
                        w: 1.0 + f64::from((seed + round + i) % 9),
                    })
                    .collect();
                c.submit_batch("busy", &updates).unwrap();
            }
        };
        let f1 = std::thread::spawn(move || filler(0));
        let f2 = std::thread::spawn(move || filler(7));
        let mut probe = NetClient::connect_tcp(addr).unwrap();
        let mut saw_full = false;
        for _ in 0..20_000 {
            match probe.try_submit_batch("busy", &[]) {
                Err(ServeError::QueueFull { capacity }) => {
                    assert_eq!(capacity, 1);
                    saw_full = true;
                    break;
                }
                Ok(_) | Err(ServeError::Engine(_)) => {}
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        f1.join().unwrap();
        f2.join().unwrap();
        assert!(saw_full, "the single-slot queue must reject a no_wait submit");
        drop(probe);
        drop(setup);
        server.shutdown();
    }

    #[test]
    fn malformed_frames_answer_corrupt_and_keep_the_connection() {
        let service = service();
        let server = SocketServer::bind_tcp(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let addr = server.tcp_addr().unwrap();
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        // Garbage request tag.
        write_frame(&mut writer, &[0xEE, 0, 0, 0, 0]).unwrap();
        writer.flush().unwrap();
        let payload = read_frame(&mut reader).unwrap().expect("an error frame");
        match decode_response(&payload) {
            Err(ServeError::Corrupt { context }) => {
                assert!(context.contains("unknown request tag"), "got: {context}")
            }
            Err(other) => panic!("expected Corrupt, got {other:?}"),
            Ok(_) => panic!("a garbage frame decoded as success"),
        }
        // The connection survives: a well-formed request still works.
        let mut client = NetClient {
            reader: BufReader::new(Box::new(reader.into_inner())),
            writer: Box::new(writer),
        };
        client.create_session("after-garbage", &small_graph()).unwrap();
        drop(client);
        server.shutdown();
    }

    #[test]
    fn wire_error_codec_round_trips_every_variant() {
        let errors = vec![
            ServeError::UnknownSession { session: "s".into() },
            ServeError::SessionExists { session: "s".into() },
            ServeError::QueueFull { capacity: 7 },
            ServeError::ServiceClosed,
            ServeError::AdmissionDenied { used: 11, limit: 10 },
            ServeError::Corrupt { context: "bad magic".into() },
            ServeError::Persist { context: "disk full".into() },
            ServeError::Timeout { after_ms: 1_500 },
            ServeError::Wire { context: "reset".into() },
        ];
        for err in errors {
            let frame = encode_response(&Err(err.clone())).unwrap();
            match decode_response(&frame) {
                Err(back) => assert_eq!(back, err),
                Ok(_) => panic!("error frame decoded as success"),
            }
        }
    }

    #[test]
    fn metrics_request_round_trips_over_a_live_socket() {
        mwm_obs::set_enabled(true);
        let service = service();
        let server = SocketServer::bind_tcp(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let mut client = NetClient::connect_tcp(server.tcp_addr().unwrap()).unwrap();
        client.create_session("obs", &small_graph()).unwrap();
        client.submit_batch("obs", &[]).unwrap();
        mwm_obs::Observable::publish_metrics(&*service, mwm_obs::global());

        let snap = client.metrics().unwrap();
        assert!(
            snap.counter("net_requests_total") > 0,
            "live traffic must show up in the wire snapshot"
        );
        assert!(snap.counter("serve_requests_total") > 0);
        assert!(snap.counter_family("pass_total") > 0, "the bootstrap epoch ran engine passes");
        assert_eq!(snap.gauge("serve_sessions"), 1);
        assert!(!snap.render_text().is_empty());

        // A Metrics request naming a session is malformed.
        let frame = NetClient::header(REQ_METRICS, "not-empty").unwrap().into_bytes();
        match client.call(&frame) {
            Err(ServeError::Corrupt { .. }) => {}
            Err(other) => panic!("expected Corrupt for a non-empty Metrics session, got {other}"),
            Ok(_) => panic!("a malformed Metrics request decoded as success"),
        }
        // ... and the connection survives it.
        let (epoch, _, _) = client.weight("obs").unwrap();
        assert_eq!(epoch, 1);
        drop(client);
        server.shutdown();
    }

    #[test]
    fn timeout_then_reuse_of_a_connection_is_safe() {
        let mk = || {
            Arc::new(
                MatchingService::start(ServiceConfig {
                    workers: 1,
                    max_streamed_items: Some(100_000),
                    session_defaults: DynamicConfig { eps: 0.25, seed: 7, ..Default::default() },
                    ..Default::default()
                })
                .unwrap(),
            )
        };
        let traffic: [(&str, Vec<GraphUpdate>); 2] =
            [("t", vec![]), ("t", vec![GraphUpdate::InsertEdge { u: 0, v: 7, w: 9.0 }])];

        // Reference run under a generous deadline: the pool accounting the
        // timed-out run must reproduce exactly.
        let reference = mk();
        {
            let server = SocketServer::bind_tcp(Arc::clone(&reference), "127.0.0.1:0").unwrap();
            let mut c = NetClient::connect_tcp(server.tcp_addr().unwrap()).unwrap();
            c.create_session("t", &small_graph()).unwrap();
            for (session, updates) in &traffic {
                c.submit_batch(session, updates).unwrap();
            }
            drop(c);
            server.shutdown();
        }

        // Zero deadline: every queued request answers Timeout while its work
        // still commits worker-side. The abandoned tickets' late results
        // must never reach the connection, and each reservation must be
        // settled exactly once.
        let service = mk();
        let server =
            SocketServer::bind_tcp_with(Arc::clone(&service), "127.0.0.1:0", Duration::ZERO)
                .unwrap();
        let mut client = NetClient::connect_tcp(server.tcp_addr().unwrap()).unwrap();
        let mut timeouts = 0;
        let mut check = |r: Result<EpochStats, ServeError>| match r {
            Err(ServeError::Timeout { .. }) => timeouts += 1,
            Ok(_) => {}
            Err(other) => panic!("unexpected error {other}"),
        };
        match client.create_session("t", &small_graph()) {
            Ok(()) | Err(ServeError::Timeout { .. }) => {}
            Err(other) => panic!("unexpected error {other}"),
        }
        for (session, updates) in &traffic {
            check(client.submit_batch(session, updates));
        }
        assert!(timeouts > 0, "a zero deadline must actually time out");

        // The in-process convenience wrappers queue behind the abandoned
        // jobs on the same worker, so this blocks until all of them have
        // committed — FIFO order per session shard.
        let local = service.matching("t").unwrap();
        assert!(local.weight > 0.0, "abandoned work must still commit");

        // Exactly-once settlement: abandoning the wait changed nothing
        // about what the epochs charged to the admission pool.
        assert_eq!(service.pool_used(), reference.pool_used());
        assert!(service.pool_used() > 0);

        // The connection survives its timed-out requests: a Metrics request
        // (answered at the connection layer, no ticket) round-trips, and a
        // further queued request gets a fresh, well-typed reply — never a
        // stale late response from an abandoned ticket.
        client.metrics().unwrap();
        match client.weight("t") {
            Ok((epoch, _version, weight)) => {
                assert_eq!(epoch, 3);
                assert!(weight > 0.0);
            }
            Err(ServeError::Timeout { .. }) => {}
            Err(other) => panic!("unexpected error {other}"),
        }
        drop(client);
        server.shutdown();
    }
}
