//! ℓ0-sampling sketches.
//!
//! An ℓ0-sampler over a domain `[N]` supports linear updates `f[i] += Δ` and,
//! at query time, returns a (near-)uniformly random index from the support of
//! `f`, or reports that `f = 0`. The classic construction subsamples the
//! domain at geometric rates (`2^{-j}` for level `j`) and keeps a 1-sparse
//! recovery sketch per level; at query time some level contains exactly one
//! surviving nonzero coordinate with constant probability, which is then
//! decoded exactly. We repeat the construction a few times to drive the
//! failure probability down.
//!
//! Linearity (mergability) is what makes the AGM graph sketches of
//! [`crate::graph_sketch`] work: the ℓ0-sampler of a sum of vectors is the sum
//! of the samplers.

use crate::error::SketchError;
use crate::hashing::PairwiseHash;
use crate::one_sparse::{Decode, OneSparse};

/// Number of independent repetitions inside one sampler.
const DEFAULT_REPS: usize = 6;

/// A mergeable ℓ0-sampler over the domain `[0, domain)`.
#[derive(Clone, Debug)]
pub struct L0Sampler {
    domain: u64,
    levels: usize,
    reps: usize,
    seed: u64,
    /// `reps × levels` one-sparse sketches, row-major by repetition.
    cells: Vec<OneSparse>,
}

impl L0Sampler {
    /// Creates an empty sampler. `seed` must be shared by all samplers that
    /// will later be merged (they must make identical subsampling decisions).
    pub fn new(domain: u64, seed: u64) -> Self {
        Self::with_reps(domain, seed, DEFAULT_REPS)
    }

    /// Creates a sampler with an explicit number of repetitions.
    pub fn with_reps(domain: u64, seed: u64, reps: usize) -> Self {
        assert!(domain >= 1);
        assert!(reps >= 1);
        let levels = (64 - (domain.max(2) - 1).leading_zeros()) as usize + 2;
        let mut cells = Vec::with_capacity(reps * levels);
        for rep in 0..reps {
            // Fingerprint base shared per (seed, rep) so merging works.
            let base = PairwiseHash::new(seed, 1_000 + rep as u64).hash(0x5eed);
            for _ in 0..levels {
                cells.push(OneSparse::new(base));
            }
        }
        L0Sampler { domain, levels, reps, seed, cells }
    }

    /// The domain size of the sampler.
    pub fn domain(&self) -> u64 {
        self.domain
    }

    /// Space usage in number of one-sparse cells (for the resource accounting).
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    #[inline]
    fn level_hash(&self, rep: usize) -> PairwiseHash {
        PairwiseHash::new(self.seed, 2_000 + rep as u64)
    }

    /// Applies the linear update `f[index] += delta`.
    pub fn update(&mut self, index: u64, delta: i64) {
        assert!(index < self.domain, "index out of sampler domain");
        if delta == 0 {
            return;
        }
        for rep in 0..self.reps {
            let h = self.level_hash(rep);
            // Item participates in levels 0..=level(index).
            let max_level = (h.level(index) as usize).min(self.levels - 1);
            for lvl in 0..=max_level {
                self.cells[rep * self.levels + lvl].update(index, delta);
            }
        }
    }

    /// Merges another sampler into this one. Both must share domain, seed and
    /// shape: samplers built with different parameters made different
    /// subsampling decisions and their cell-wise sum is not the sketch of any
    /// stream, so a mismatch is a typed error and `self` stays untouched.
    pub fn merge(&mut self, other: &L0Sampler) -> Result<(), SketchError> {
        let incompatible = |field, left, right| SketchError::Incompatible { field, left, right };
        if self.domain != other.domain {
            return Err(incompatible("domain", self.domain, other.domain));
        }
        if self.seed != other.seed {
            return Err(incompatible("seed", self.seed, other.seed));
        }
        if self.reps != other.reps {
            return Err(incompatible("reps", self.reps as u64, other.reps as u64));
        }
        if self.levels != other.levels {
            return Err(incompatible("levels", self.levels as u64, other.levels as u64));
        }
        for (a, b) in self.cells.iter_mut().zip(other.cells.iter()) {
            a.merge(b);
        }
        Ok(())
    }

    /// Attempts to sample a nonzero coordinate. Returns `Some((index, value))`
    /// on success and `None` if the vector appears to be zero *or* every level
    /// failed to isolate a single coordinate (small constant probability).
    pub fn sample(&self) -> Option<(u64, i64)> {
        for rep in 0..self.reps {
            // Prefer the deepest level that still decodes; shallower levels are
            // crowded, deeper ones are likely empty.
            for lvl in (0..self.levels).rev() {
                match self.cells[rep * self.levels + lvl].decode() {
                    Decode::One(idx, val) => return Some((idx, val)),
                    Decode::Zero | Decode::Many => continue,
                }
            }
        }
        None
    }

    /// True if every cell is identically zero (the sketched vector is surely 0).
    pub fn is_zero(&self) -> bool {
        self.cells.iter().all(|c| c.is_zero())
    }

    /// The shared seed all merge partners must carry.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of independent repetitions.
    pub fn reps(&self) -> usize {
        self.reps
    }

    /// Number of subsampling levels per repetition.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The raw `reps × levels` cell grid, row-major by repetition — the
    /// complete mutable state of the sampler (shape and randomness are derived
    /// from `(domain, seed, reps)`), for bit-exact serialization.
    pub fn cells(&self) -> &[OneSparse] {
        &self.cells
    }

    /// Rebuilds a sampler from parameters plus a serialized cell grid. The
    /// grid must have exactly the shape and per-repetition fingerprint bases
    /// that `with_reps(domain, seed, reps)` derives; anything else means the
    /// serialized state is corrupt.
    pub fn from_raw(
        domain: u64,
        seed: u64,
        reps: usize,
        cells: Vec<OneSparse>,
    ) -> Result<Self, SketchError> {
        if domain < 1 || reps < 1 {
            return Err(SketchError::InvalidState { what: "sampler domain and reps must be >= 1" });
        }
        let template = L0Sampler::with_reps(domain, seed, reps);
        if cells.len() != template.cells.len() {
            return Err(SketchError::InvalidState { what: "sampler cell count mismatch" });
        }
        for (got, want) in cells.iter().zip(template.cells.iter()) {
            if got.raw_parts().3 != want.raw_parts().3 {
                return Err(SketchError::InvalidState {
                    what: "sampler cell fingerprint base disagrees with the seed",
                });
            }
        }
        Ok(L0Sampler { cells, ..template })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn empty_sampler_returns_none() {
        let s = L0Sampler::new(1 << 20, 7);
        assert!(s.sample().is_none());
        assert!(s.is_zero());
    }

    #[test]
    fn singleton_recovered_exactly() {
        let mut s = L0Sampler::new(1 << 20, 7);
        s.update(123_456, 9);
        assert_eq!(s.sample(), Some((123_456, 9)));
    }

    #[test]
    fn sample_returns_a_true_support_element() {
        let mut rng = StdRng::seed_from_u64(11);
        let domain = 1u64 << 24;
        let mut s = L0Sampler::new(domain, 99);
        let mut support = std::collections::HashMap::new();
        for _ in 0..500 {
            let idx = rng.gen_range(0..domain);
            let val = rng.gen_range(1..10i64);
            *support.entry(idx).or_insert(0i64) += val;
            s.update(idx, val);
        }
        support.retain(|_, v| *v != 0);
        let (idx, val) = s.sample().expect("sampler should succeed on a 500-sparse vector");
        assert_eq!(support.get(&idx), Some(&val));
    }

    #[test]
    fn deletions_shrink_support() {
        let mut s = L0Sampler::new(1 << 16, 3);
        for i in 0..50u64 {
            s.update(i * 7, 1);
        }
        for i in 1..50u64 {
            s.update(i * 7, -1);
        }
        // Only index 0 remains.
        assert_eq!(s.sample(), Some((0, 1)));
    }

    #[test]
    fn merge_acts_like_sum_of_streams() {
        let seed = 5;
        let domain = 1 << 18;
        let mut a = L0Sampler::new(domain, seed);
        let mut b = L0Sampler::new(domain, seed);
        a.update(10, 1);
        a.update(20, 2);
        b.update(10, -1);
        b.update(30, 5);
        a.merge(&b).unwrap();
        // Support of the sum is {20, 30}.
        let got = a.sample().expect("non-empty support");
        assert!(got == (20, 2) || got == (30, 5), "got {got:?}");
    }

    #[test]
    fn sampling_is_not_too_skewed() {
        // Over many independent seeds, each support element should be chosen a
        // nontrivial fraction of the time (near-uniformity, loosely checked).
        let support: Vec<u64> = vec![111, 2_222, 33_333, 444_444];
        let mut counts = std::collections::HashMap::new();
        for seed in 0..200u64 {
            let mut s = L0Sampler::new(1 << 20, seed);
            for &i in &support {
                s.update(i, 1);
            }
            if let Some((idx, _)) = s.sample() {
                *counts.entry(idx).or_insert(0usize) += 1;
            }
        }
        for &i in &support {
            let c = counts.get(&i).copied().unwrap_or(0);
            assert!(c > 10, "element {i} sampled only {c} times out of 200");
        }
    }

    #[test]
    fn merging_mismatched_samplers_is_a_typed_error() {
        use crate::SketchError;
        let mut a = L0Sampler::new(100, 1);
        a.update(42, 3);
        let before = a.clone();

        let b = L0Sampler::new(100, 2);
        assert_eq!(
            a.merge(&b),
            Err(SketchError::Incompatible { field: "seed", left: 1, right: 2 })
        );
        let c = L0Sampler::new(50, 1);
        assert_eq!(
            a.merge(&c),
            Err(SketchError::Incompatible { field: "domain", left: 100, right: 50 })
        );
        let d = L0Sampler::with_reps(100, 1, 2);
        assert_eq!(
            a.merge(&d),
            Err(SketchError::Incompatible { field: "reps", left: 6, right: 2 })
        );
        // Failed merges must leave the receiver untouched.
        assert_eq!(a.cells(), before.cells());
        assert_eq!(a.sample(), Some((42, 3)));
    }

    #[test]
    fn raw_round_trip_is_bit_exact_and_validated() {
        let mut s = L0Sampler::with_reps(1 << 12, 9, 3);
        for i in 0..40u64 {
            s.update(i * 11 % (1 << 12), (i % 5) as i64 - 2);
        }
        let back = L0Sampler::from_raw(s.domain(), s.seed(), s.reps(), s.cells().to_vec()).unwrap();
        assert_eq!(back.cells(), s.cells());
        assert_eq!(back.sample(), s.sample());

        // Wrong shape or wrong seed-derived bases are rejected.
        assert!(L0Sampler::from_raw(1 << 12, 9, 2, s.cells().to_vec()).is_err());
        assert!(L0Sampler::from_raw(1 << 12, 10, 3, s.cells().to_vec()).is_err());
    }
}
