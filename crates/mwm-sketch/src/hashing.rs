//! Seeded pairwise-independent hash functions.
//!
//! All sketches must share randomness (the same "pseudorandom matrix") across
//! machines so that merged sketches remain consistent; this is achieved by
//! deriving every hash function deterministically from a `u64` seed.

/// A 2-universal style hash from `u64` keys to `u64` values, implemented with
/// the multiply-shift family plus a splitmix finalizer. Deterministic in the
/// seed, cheap, and good enough for the sub-sampling decisions made by the
/// sketches (the paper only needs pairwise independence / limited randomness).
#[derive(Clone, Copy, Debug)]
pub struct PairwiseHash {
    a: u64,
    b: u64,
}

/// SplitMix64 step; used for seed expansion and as a finalizer.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl PairwiseHash {
    /// Derives a hash function from a seed and a stream index (so that many
    /// independent functions can be drawn from one master seed).
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut s = seed ^ stream.wrapping_mul(0xA24BAED4963EE407);
        let mut a = splitmix64(&mut s) | 1; // odd multiplier
        if a == 1 {
            a = 0x9E3779B97F4A7C15 | 1;
        }
        let b = splitmix64(&mut s);
        PairwiseHash { a, b }
    }

    /// Hashes a key to a full 64-bit value.
    #[inline]
    pub fn hash(&self, key: u64) -> u64 {
        let mut z = key.wrapping_mul(self.a).wrapping_add(self.b);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Hashes a key to a uniform float in `[0, 1)`.
    #[inline]
    pub fn hash_unit(&self, key: u64) -> f64 {
        // 53 bits of mantissa.
        (self.hash(key) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The sub-sampling *level* of a key: the number of leading zeros of its
    /// hash, i.e. key survives level `j` with probability `2^{-j}`.
    #[inline]
    pub fn level(&self, key: u64) -> u32 {
        self.hash(key).leading_zeros()
    }
}

/// Fingerprint arithmetic modulo the Mersenne prime `2^61 - 1`, used by the
/// 1-sparse recovery test.
pub const FP_PRIME: u64 = (1 << 61) - 1;

/// Reduces a 128-bit product modulo `2^61 - 1`.
#[inline]
pub fn mod_mersenne61(x: u128) -> u64 {
    let lo = (x & ((1u128 << 61) - 1)) as u64;
    let hi = (x >> 61) as u64;
    let mut r = lo.wrapping_add(hi);
    if r >= FP_PRIME {
        r -= FP_PRIME;
    }
    r
}

/// Modular multiplication modulo `2^61 - 1`.
#[inline]
pub fn mul_mod(a: u64, b: u64) -> u64 {
    mod_mersenne61(a as u128 * b as u128)
}

/// Modular exponentiation modulo `2^61 - 1`.
pub fn pow_mod(mut base: u64, mut exp: u64) -> u64 {
    base %= FP_PRIME;
    let mut acc = 1u64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base);
        }
        base = mul_mod(base, base);
        exp >>= 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let h1 = PairwiseHash::new(42, 7);
        let h2 = PairwiseHash::new(42, 7);
        let h3 = PairwiseHash::new(43, 7);
        for k in 0..100u64 {
            assert_eq!(h1.hash(k), h2.hash(k));
        }
        assert!((0..100u64).any(|k| h1.hash(k) != h3.hash(k)));
    }

    #[test]
    fn unit_hash_in_range() {
        let h = PairwiseHash::new(1, 0);
        for k in 0..1000u64 {
            let u = h.hash_unit(k);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn levels_follow_geometric_distribution() {
        let h = PairwiseHash::new(7, 3);
        let n = 100_000u64;
        let level_ge_3 = (0..n).filter(|&k| h.level(k) >= 3).count() as f64;
        let frac = level_ge_3 / n as f64;
        // Pr[level >= 3] = 1/8; allow generous slack.
        assert!((frac - 0.125).abs() < 0.02, "fraction at level>=3 was {frac}");
    }

    #[test]
    fn mersenne_arithmetic() {
        assert_eq!(mul_mod(FP_PRIME - 1, 2) % FP_PRIME, FP_PRIME - 2);
        assert_eq!(pow_mod(3, 0), 1);
        assert_eq!(pow_mod(3, 5), 243);
        // Fermat: a^(p-1) = 1 mod p for prime p.
        assert_eq!(pow_mod(12345, FP_PRIME - 1), 1);
    }

    #[test]
    fn hash_distribution_is_roughly_uniform() {
        let h = PairwiseHash::new(99, 1);
        let buckets = 16usize;
        let mut counts = vec![0usize; buckets];
        let n = 64_000u64;
        for k in 0..n {
            counts[(h.hash(k) % buckets as u64) as usize] += 1;
        }
        let expected = n as f64 / buckets as f64;
        for &c in &counts {
            assert!((c as f64 - expected).abs() < expected * 0.1, "bucket count {c} vs {expected}");
        }
    }
}
