//! Typed errors for sketch operations.
//!
//! Linear sketches are only meaningful to combine when they were built over
//! the same domain with the same seeded randomness — merging incompatible
//! sketches would silently produce garbage samples. The merge entry points
//! therefore validate compatibility and surface mismatches as
//! [`SketchError`] instead of corrupting state.

use std::fmt;

/// Error type for sketch construction and merge operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SketchError {
    /// Two sketches disagree on a structural parameter and cannot be merged.
    Incompatible {
        /// Which parameter differs (`"domain"`, `"seed"`, `"reps"`, ...).
        field: &'static str,
        /// The parameter value on the receiver.
        left: u64,
        /// The parameter value on the argument.
        right: u64,
    },
    /// A deserialized raw state does not describe a valid sketch.
    InvalidState {
        /// What was wrong with the state.
        what: &'static str,
    },
}

impl fmt::Display for SketchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchError::Incompatible { field, left, right } => {
                write!(f, "sketches are not mergeable: {field} mismatch ({left} vs {right})")
            }
            SketchError::InvalidState { what } => {
                write!(f, "invalid sketch state: {what}")
            }
        }
    }
}

impl std::error::Error for SketchError {}
