//! Linear sketches for graph streams.
//!
//! The paper's algorithms are implemented through *linear sketches*: inner
//! products of the input (an oriented vertex-edge adjacency matrix) with
//! pseudorandom matrices (footnote 1 of the paper). The crucial properties are
//!
//! * **linearity** — the sketch of a sum of vectors is the sum of the sketches,
//!   so per-vertex sketches can be merged to obtain the sketch of the edge
//!   boundary of any vertex set (internal edges cancel), and
//! * **one-round computability** — all sketches are computed in a single pass /
//!   single MapReduce round and only *post-processed* adaptively.
//!
//! Modules:
//! * [`hashing`]: seeded pairwise-independent hash functions.
//! * [`one_sparse`]: exact 1-sparse vector recovery with fingerprint verification.
//! * [`l0`]: ℓ0-samplers (sample a uniformly random nonzero coordinate).
//! * [`graph_sketch`]: AGM per-vertex edge-incidence sketches and edge sampling
//!   across arbitrary cuts.
//! * [`spanning_forest`]: Borůvka-style spanning forest and k-connectivity
//!   recovery from sketches (used by sparsification and the initial solution).

pub mod error;
pub mod graph_sketch;
pub mod hashing;
pub mod l0;
pub mod one_sparse;
pub mod spanning_forest;

pub use error::SketchError;
pub use graph_sketch::{EdgeSample, GraphSketcher, VertexSketch};
pub use l0::L0Sampler;
pub use one_sparse::{Decode, OneSparse};
pub use spanning_forest::{
    sketch_connected_components, sketch_spanning_forest, SketchForestResult,
};
