//! AGM graph sketches: per-vertex ℓ0-samplers over the oriented edge-incidence
//! vector (Ahn–Guha–McGregor, referenced as [3, 4] in the paper).
//!
//! For every vertex `v` we sketch the vector `a_v ∈ {-1, 0, +1}^{n choose 2}`
//! with `a_v[(i,j)] = +1` if `v = i`, `-1` if `v = j` (for `i < j`) for every
//! edge `{i,j}` incident to `v`. Because the sketches are linear, summing the
//! sketches of all vertices of a set `S` yields a sketch of the edge boundary
//! `∂S`: every internal edge contributes `+1 - 1 = 0` and cancels. Sampling a
//! nonzero coordinate of the merged sketch therefore samples an edge crossing
//! the cut `(S, V∖S)` — exactly the primitive promised in footnote 1 of the
//! paper ("the sketch is computed first, and subsequently an adversary
//! provides a cut; we then sample an edge across that cut").

use crate::error::SketchError;
use crate::l0::L0Sampler;
use mwm_graph::{Graph, VertexId};

/// An edge recovered from a sketch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeSample {
    /// Smaller endpoint.
    pub u: VertexId,
    /// Larger endpoint.
    pub v: VertexId,
}

/// Encodes the pair `(u, v)` with `u < v` into an index in `[0, n·(n-1)/2)`.
#[inline]
pub fn encode_pair(n: u64, u: u64, v: u64) -> u64 {
    debug_assert!(u < v && v < n);
    // Row-major upper triangle: offset(u) + (v - u - 1), offset(u) = u*n - u*(u+1)/2.
    u * n - u * (u + 1) / 2 + (v - u - 1)
}

/// Inverse of [`encode_pair`].
#[inline]
pub fn decode_pair(n: u64, mut code: u64) -> (u64, u64) {
    let mut u = 0u64;
    loop {
        let row = n - u - 1;
        if code < row {
            return (u, u + 1 + code);
        }
        code -= row;
        u += 1;
    }
}

/// The sketch of one vertex: a single mergeable ℓ0-sampler over edge slots.
#[derive(Clone, Debug)]
pub struct VertexSketch {
    n: u64,
    sampler: L0Sampler,
}

impl VertexSketch {
    /// Creates an empty sketch for a graph on `n` vertices with a shared seed.
    pub fn new(n: usize, seed: u64) -> Self {
        let n = n as u64;
        let domain = (n * (n - 1) / 2).max(1);
        VertexSketch { n, sampler: L0Sampler::new(domain, seed) }
    }

    /// Like [`VertexSketch::new`] with an explicit repetition count — fewer
    /// repetitions trade recovery probability for space (the turnstile sketch
    /// banks run many narrow sketches instead of few wide ones).
    pub fn with_reps(n: usize, seed: u64, reps: usize) -> Self {
        let n = n as u64;
        let domain = (n * (n - 1) / 2).max(1);
        VertexSketch { n, sampler: L0Sampler::with_reps(domain, seed, reps) }
    }

    /// Records that edge `{a, b}` is incident to the sketched vertex `owner`.
    pub fn add_edge(&mut self, owner: VertexId, a: VertexId, b: VertexId) {
        let (u, v) = if a < b { (a, b) } else { (b, a) };
        debug_assert!(owner == a || owner == b);
        let idx = encode_pair(self.n, u as u64, v as u64);
        let sign = if owner == u { 1 } else { -1 };
        self.sampler.update(idx, sign);
    }

    /// Removes a previously recorded edge (used when peeling recovered forests).
    pub fn remove_edge(&mut self, owner: VertexId, a: VertexId, b: VertexId) {
        let (u, v) = if a < b { (a, b) } else { (b, a) };
        let idx = encode_pair(self.n, u as u64, v as u64);
        let sign = if owner == u { -1 } else { 1 };
        self.sampler.update(idx, sign);
    }

    /// Merges another vertex sketch into this one (sketch of the union of the
    /// two incidence vectors — internal edges cancel). Sketches over different
    /// vertex counts or with different seeded randomness are not mergeable;
    /// the mismatch is a typed error and `self` stays untouched.
    pub fn merge(&mut self, other: &VertexSketch) -> Result<(), SketchError> {
        if self.n != other.n {
            return Err(SketchError::Incompatible { field: "n", left: self.n, right: other.n });
        }
        self.sampler.merge(&other.sampler)
    }

    /// Samples an edge crossing the boundary of the set of vertices whose
    /// sketches have been merged into this one.
    pub fn sample_boundary_edge(&self) -> Option<EdgeSample> {
        self.sampler.sample().map(|(idx, _)| {
            let (u, v) = decode_pair(self.n, idx);
            EdgeSample { u: u as VertexId, v: v as VertexId }
        })
    }

    /// Space in sketch cells (for resource accounting).
    pub fn num_cells(&self) -> usize {
        self.sampler.num_cells()
    }

    /// The vertex count the pair encoding runs over.
    pub fn num_vertices(&self) -> u64 {
        self.n
    }

    /// The underlying pair-domain sampler (for bit-exact serialization).
    pub fn sampler(&self) -> &L0Sampler {
        &self.sampler
    }

    /// Rebuilds a vertex sketch from a deserialized sampler. The sampler's
    /// domain must be the pair domain of `n` vertices.
    pub fn from_raw(n: u64, sampler: L0Sampler) -> Result<Self, SketchError> {
        if sampler.domain() != (n * n.saturating_sub(1) / 2).max(1) {
            return Err(SketchError::InvalidState {
                what: "sampler domain is not the pair domain of n vertices",
            });
        }
        Ok(VertexSketch { n, sampler })
    }
}

/// Builds per-vertex sketches of a whole graph in "one pass": the `t`-th
/// independent copy uses seed `seed + t` so that several rounds of Borůvka
/// peeling each get fresh randomness (as required by the AGM analysis).
#[derive(Clone, Debug)]
pub struct GraphSketcher {
    n: usize,
    /// `copies × n` sketches, row-major by copy.
    sketches: Vec<VertexSketch>,
    copies: usize,
}

impl GraphSketcher {
    /// Sketches `graph` with the given number of independent copies.
    pub fn sketch_graph(graph: &Graph, copies: usize, seed: u64) -> Self {
        let n = graph.num_vertices();
        let mut sketches = Vec::with_capacity(copies * n);
        for c in 0..copies {
            for _ in 0..n {
                sketches.push(VertexSketch::new(n, seed.wrapping_add(c as u64)));
            }
            for e in graph.edges() {
                let base = c * n;
                sketches[base + e.u as usize].add_edge(e.u, e.u, e.v);
                sketches[base + e.v as usize].add_edge(e.v, e.u, e.v);
            }
        }
        GraphSketcher { n, sketches, copies }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of independent copies.
    pub fn num_copies(&self) -> usize {
        self.copies
    }

    /// The sketch of vertex `v` in copy `c`.
    pub fn vertex_sketch(&self, c: usize, v: VertexId) -> &VertexSketch {
        &self.sketches[c * self.n + v as usize]
    }

    /// Merges the copy-`c` sketches of all vertices of `set` and samples an
    /// edge crossing the cut `(set, V∖set)`.
    pub fn sample_cut_edge(&self, c: usize, set: &[VertexId]) -> Option<EdgeSample> {
        let mut it = set.iter();
        let first = *it.next()?;
        let mut merged = self.vertex_sketch(c, first).clone();
        for &v in it {
            merged
                .merge(self.vertex_sketch(c, v))
                .expect("sketches from one sketcher share config");
        }
        merged.sample_boundary_edge()
    }

    /// Total number of sketch cells (space accounting).
    pub fn total_cells(&self) -> usize {
        self.sketches.iter().map(|s| s.num_cells()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwm_graph::generators::{self, WeightModel};
    use rand::prelude::*;

    #[test]
    fn pair_encoding_round_trips() {
        let n = 37u64;
        let mut code_seen = std::collections::HashSet::new();
        for u in 0..n {
            for v in (u + 1)..n {
                let c = encode_pair(n, u, v);
                assert!(code_seen.insert(c), "codes must be unique");
                assert_eq!(decode_pair(n, c), (u, v));
            }
        }
        assert_eq!(code_seen.len() as u64, n * (n - 1) / 2);
    }

    #[test]
    fn single_vertex_boundary_is_its_incident_edges() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 2, 1.0);
        g.add_edge(3, 4, 1.0);
        let sk = GraphSketcher::sketch_graph(&g, 1, 42);
        let e = sk.sample_cut_edge(0, &[0]).expect("vertex 0 has incident edges");
        assert!(e.u == 0 || e.v == 0);
        // Vertex with no incident edges yields nothing... vertex 3 has one edge though.
        let e34 = sk.sample_cut_edge(0, &[3]).unwrap();
        assert_eq!((e34.u, e34.v), (3, 4));
    }

    #[test]
    fn internal_edges_cancel_in_merged_sketch() {
        // Component {0,1,2} fully internal except one edge to vertex 3.
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(0, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        let sk = GraphSketcher::sketch_graph(&g, 1, 7);
        let e = sk.sample_cut_edge(0, &[0, 1, 2]).expect("one boundary edge exists");
        assert_eq!((e.u, e.v), (2, 3));
    }

    #[test]
    fn saturated_component_has_empty_boundary() {
        let mut g = Graph::new(6);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(3, 4, 1.0);
        let sk = GraphSketcher::sketch_graph(&g, 1, 13);
        assert!(sk.sample_cut_edge(0, &[0, 1, 2]).is_none());
        assert!(sk.sample_cut_edge(0, &[3, 4]).is_none());
    }

    #[test]
    fn merging_mismatched_vertex_sketches_is_a_typed_error() {
        use crate::SketchError;
        let mut a = VertexSketch::new(10, 1);
        a.add_edge(0, 0, 3);
        let before = a.sampler().cells().to_vec();

        // Different vertex count: the pair encodings disagree.
        let b = VertexSketch::new(12, 1);
        assert_eq!(a.merge(&b), Err(SketchError::Incompatible { field: "n", left: 10, right: 12 }));
        // Same n, different seed: the subsampling decisions disagree.
        let c = VertexSketch::new(10, 2);
        assert_eq!(
            a.merge(&c),
            Err(SketchError::Incompatible { field: "seed", left: 1, right: 2 })
        );
        // Failed merges must leave the receiver untouched and decodable.
        assert_eq!(a.sampler().cells(), &before[..]);
        assert_eq!(a.sample_boundary_edge(), Some(EdgeSample { u: 0, v: 3 }));
    }

    #[test]
    fn sampled_cut_edges_are_real_edges_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::gnm(40, 120, WeightModel::Unit, &mut rng);
        let edge_set: std::collections::HashSet<(u32, u32)> =
            g.edges().iter().map(|e| e.key()).collect();
        let sk = GraphSketcher::sketch_graph(&g, 2, 777);
        for trial in 0..20 {
            let size = rng.gen_range(1..20);
            let mut set: Vec<VertexId> = (0..40u32).collect();
            set.shuffle(&mut rng);
            set.truncate(size);
            set.sort_unstable();
            if let Some(e) = sk.sample_cut_edge(trial % 2, &set) {
                assert!(edge_set.contains(&(e.u, e.v)), "sampled a non-edge {e:?}");
                let in_set = |x: u32| set.binary_search(&x).is_ok();
                assert!(in_set(e.u) != in_set(e.v), "sampled edge does not cross the cut");
            }
        }
    }
}
