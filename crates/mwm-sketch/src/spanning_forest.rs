//! Spanning forest and connectivity recovery from AGM sketches.
//!
//! This is the post-processing half of the "compute sketches in one round, use
//! them in `O(log n)` sequential steps" pattern that the paper generalizes
//! (Section 1: "the linear sketches were computed in parallel in 1 round but
//! used sequentially in O(log n) steps of postprocessing to produce a spanning
//! tree"). Borůvka peeling: in each round every component samples one outgoing
//! edge from the merged sketches of its members; sampled edges merge
//! components; a fresh independent sketch copy is used per round.

use crate::graph_sketch::GraphSketcher;
use mwm_graph::{Graph, UnionFind, VertexId};

/// Result of recovering a spanning forest from sketches.
#[derive(Clone, Debug)]
pub struct SketchForestResult {
    /// The recovered forest edges (endpoints only; weights are not sketched).
    pub forest: Vec<(VertexId, VertexId)>,
    /// Component label per vertex after recovery.
    pub components: Vec<usize>,
    /// Number of connected components found.
    pub num_components: usize,
    /// Number of Borůvka rounds (sequential post-processing steps) used.
    pub rounds: usize,
}

/// Recovers a spanning forest of `graph` using only its linear sketches.
///
/// `copies` independent sketch copies bound the number of Borůvka rounds; for
/// an `n`-vertex graph `⌈log2 n⌉ + 2` copies suffice with high probability.
/// The graph is only used to *build* the sketches (one pass); recovery never
/// looks at the edge list again.
pub fn sketch_spanning_forest(graph: &Graph, seed: u64) -> SketchForestResult {
    let n = graph.num_vertices();
    let copies = ((n.max(2) as f64).log2().ceil() as usize + 2).max(3);
    let sketcher = GraphSketcher::sketch_graph(graph, copies, seed);
    recover_forest(&sketcher)
}

/// Recovers a spanning forest from pre-computed sketches.
pub fn recover_forest(sketcher: &GraphSketcher) -> SketchForestResult {
    let n = sketcher.num_vertices();
    let mut uf = UnionFind::new(n);
    let mut forest: Vec<(VertexId, VertexId)> = Vec::new();
    let mut rounds = 0usize;
    for c in 0..sketcher.num_copies() {
        if uf.num_components() == 1 || n == 0 {
            break;
        }
        rounds += 1;
        let groups = uf.groups();
        let mut progressed = false;
        for group in groups {
            let set: Vec<VertexId> = group.iter().map(|&x| x as VertexId).collect();
            if let Some(e) = sketcher.sample_cut_edge(c, &set) {
                if uf.union(e.u as usize, e.v as usize) {
                    forest.push((e.u, e.v));
                    progressed = true;
                }
            }
        }
        if !progressed {
            // Every remaining component has an empty boundary: we are done.
            break;
        }
    }
    let (components, num_components) = uf.component_labels();
    SketchForestResult { forest, components, num_components, rounds }
}

/// Connected components from sketches alone (convenience wrapper).
pub fn sketch_connected_components(graph: &Graph, seed: u64) -> (Vec<usize>, usize) {
    let r = sketch_spanning_forest(graph, seed);
    (r.components, r.num_components)
}

/// Recovers up to `k` edge-disjoint spanning forests (the k-connectivity
/// certificate of AGM used for sparsification): forest `F_1` is recovered from
/// the sketches, its edges are subtracted (by linearity), `F_2` is recovered
/// from the residual, and so on. Returns the union of the forests.
pub fn sketch_k_forests(graph: &Graph, k: usize, seed: u64) -> Vec<Vec<(VertexId, VertexId)>> {
    let n = graph.num_vertices();
    let mut residual = graph.clone();
    let mut forests = Vec::with_capacity(k);
    for round in 0..k {
        if residual.num_edges() == 0 {
            break;
        }
        // Each peel uses fresh randomness; by linearity we could subtract the
        // recovered forest from the original sketches, but re-sketching the
        // residual is equivalent and keeps this reference implementation simple
        // (the MapReduce simulator accounts for the sketch space either way).
        let result = sketch_spanning_forest(&residual, seed.wrapping_add(round as u64 * 7919));
        if result.forest.is_empty() {
            break;
        }
        let forest_set: std::collections::HashSet<(u32, u32)> =
            result.forest.iter().map(|&(u, v)| if u < v { (u, v) } else { (v, u) }).collect();
        let remaining = residual.edge_subgraph(|_, e| !forest_set.contains(&e.key()));
        forests.push(result.forest);
        residual = remaining;
        let _ = n;
    }
    forests
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwm_graph::generators::{self, WeightModel};
    use rand::prelude::*;

    #[test]
    fn forest_on_connected_graph_spans() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::gnm(30, 200, WeightModel::Unit, &mut rng);
        let (_, true_components) = g.connected_components();
        let r = sketch_spanning_forest(&g, 99);
        assert_eq!(r.num_components, true_components);
        assert_eq!(r.forest.len(), 30 - true_components);
    }

    #[test]
    fn components_match_exact_on_disconnected_graph() {
        let mut g = Graph::new(9);
        // Three triangles.
        for base in [0u32, 3, 6] {
            g.add_edge(base, base + 1, 1.0);
            g.add_edge(base + 1, base + 2, 1.0);
            g.add_edge(base, base + 2, 1.0);
        }
        let (labels, count) = sketch_connected_components(&g, 5);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[3], labels[6]);
    }

    #[test]
    fn forest_edges_are_real_edges() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::power_law(60, 2.5, 3.0, WeightModel::Unit, &mut rng);
        let edge_set: std::collections::HashSet<(u32, u32)> =
            g.edges().iter().map(|e| e.key()).collect();
        let r = sketch_spanning_forest(&g, 17);
        for &(u, v) in &r.forest {
            let key = if u < v { (u, v) } else { (v, u) };
            assert!(edge_set.contains(&key));
        }
    }

    #[test]
    fn rounds_are_logarithmic() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::gnm(128, 1000, WeightModel::Unit, &mut rng);
        let r = sketch_spanning_forest(&g, 23);
        assert!(
            r.rounds <= 10,
            "Boruvka over 128 vertices should need <= ~log n rounds, got {}",
            r.rounds
        );
    }

    #[test]
    fn k_forests_increase_edge_count() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::gnm(25, 150, WeightModel::Unit, &mut rng);
        let forests = sketch_k_forests(&g, 3, 31);
        assert!(!forests.is_empty());
        let total: usize = forests.iter().map(|f| f.len()).sum();
        assert!(total > forests[0].len(), "additional forests should add edges");
        // Forests are edge-disjoint.
        let mut seen = std::collections::HashSet::new();
        for f in &forests {
            for &(u, v) in f {
                let key = if u < v { (u, v) } else { (v, u) };
                assert!(seen.insert(key), "forests must be edge-disjoint");
            }
        }
    }

    #[test]
    fn empty_graph_handled() {
        let g = Graph::new(5);
        let r = sketch_spanning_forest(&g, 1);
        assert_eq!(r.num_components, 5);
        assert!(r.forest.is_empty());
    }
}
