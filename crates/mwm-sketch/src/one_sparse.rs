//! Exact recovery of 1-sparse vectors with fingerprint verification.
//!
//! The building block of an ℓ0-sampler: a sketch of a vector `f ∈ Z^N` using
//! three counters — `Σ f_i`, `Σ i·f_i`, and the fingerprint `Σ f_i · r^i`
//! (mod `2^61-1`) for a random `r`. If the vector is exactly 1-sparse the
//! unique nonzero index is `Σ i·f_i / Σ f_i` and the fingerprint confirms it
//! with high probability; otherwise the fingerprint mismatch detects the
//! collision. The sketch is linear: adding two sketches yields the sketch of
//! the sum of the vectors.

use crate::hashing::{mul_mod, pow_mod, FP_PRIME};

/// A linear sketch able to detect and decode 1-sparse integer vectors.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OneSparse {
    /// `Σ f_i`
    sum: i64,
    /// `Σ i·f_i` (as i128 to avoid overflow for large indices times counts)
    weighted: i128,
    /// `Σ f_i · r^i mod p`, stored in `[0, p)`.
    fingerprint: u64,
    /// The fingerprint base `r` (identical across sketches that may be merged).
    r: u64,
}

/// Decoding result for a [`OneSparse`] sketch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decode {
    /// The sketched vector is (almost surely) the zero vector.
    Zero,
    /// The vector is 1-sparse: `(index, value)`.
    One(u64, i64),
    /// More than one nonzero coordinate (or fingerprint mismatch).
    Many,
}

impl OneSparse {
    /// Creates an empty sketch with fingerprint base `r` (must be in `[2, p)`;
    /// derive it from a seed so that merging partners agree).
    pub fn new(r: u64) -> Self {
        let r = 2 + (r % (FP_PRIME - 2));
        OneSparse { sum: 0, weighted: 0, fingerprint: 0, r }
    }

    /// Applies the update `f[index] += delta`.
    pub fn update(&mut self, index: u64, delta: i64) {
        if delta == 0 {
            return;
        }
        self.sum += delta;
        self.weighted += index as i128 * delta as i128;
        let term = mul_mod(delta.rem_euclid(FP_PRIME as i64) as u64, pow_mod(self.r, index));
        self.fingerprint = (self.fingerprint + term) % FP_PRIME;
    }

    /// Merges another sketch into this one (vectors add). Panics if the
    /// fingerprint bases differ — such sketches are not mergeable.
    pub fn merge(&mut self, other: &OneSparse) {
        assert_eq!(self.r, other.r, "cannot merge one-sparse sketches with different bases");
        self.sum += other.sum;
        self.weighted += other.weighted;
        self.fingerprint = (self.fingerprint + other.fingerprint) % FP_PRIME;
    }

    /// Negates the sketched vector (useful to subtract previously recovered edges).
    pub fn negate(&mut self) {
        self.sum = -self.sum;
        self.weighted = -self.weighted;
        self.fingerprint = (FP_PRIME - self.fingerprint) % FP_PRIME;
    }

    /// Attempts to decode the sketched vector.
    pub fn decode(&self) -> Decode {
        if self.sum == 0 && self.weighted == 0 && self.fingerprint == 0 {
            return Decode::Zero;
        }
        if self.sum == 0 {
            return Decode::Many;
        }
        if self.weighted % self.sum as i128 != 0 {
            return Decode::Many;
        }
        let idx = self.weighted / self.sum as i128;
        if idx < 0 || idx > u64::MAX as i128 {
            return Decode::Many;
        }
        let idx = idx as u64;
        // Verify: fingerprint of a 1-sparse vector {idx: sum}.
        let expect = mul_mod(self.sum.rem_euclid(FP_PRIME as i64) as u64, pow_mod(self.r, idx));
        if expect == self.fingerprint {
            Decode::One(idx, self.sum)
        } else {
            Decode::Many
        }
    }

    /// True if the sketch is entirely zero.
    pub fn is_zero(&self) -> bool {
        self.sum == 0 && self.weighted == 0 && self.fingerprint == 0
    }

    /// The raw counters `(sum, weighted, fingerprint, base)` — the complete
    /// state of the sketch, for bit-exact serialization.
    pub fn raw_parts(&self) -> (i64, i128, u64, u64) {
        (self.sum, self.weighted, self.fingerprint, self.r)
    }

    /// Rebuilds a sketch from counters produced by [`OneSparse::raw_parts`].
    /// The fingerprint must lie in `[0, p)` and the base in `[2, p)` — both
    /// hold for every sketch this type ever constructs, so a violation means
    /// the serialized state is corrupt.
    pub fn from_raw_parts(
        sum: i64,
        weighted: i128,
        fingerprint: u64,
        r: u64,
    ) -> Result<Self, crate::SketchError> {
        if fingerprint >= FP_PRIME {
            return Err(crate::SketchError::InvalidState {
                what: "one-sparse fingerprint out of field range",
            });
        }
        if !(2..FP_PRIME).contains(&r) {
            return Err(crate::SketchError::InvalidState {
                what: "one-sparse fingerprint base out of range",
            });
        }
        Ok(OneSparse { sum, weighted, fingerprint, r })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_decodes_as_zero() {
        let s = OneSparse::new(12345);
        assert_eq!(s.decode(), Decode::Zero);
        assert!(s.is_zero());
    }

    #[test]
    fn single_update_recovered() {
        let mut s = OneSparse::new(777);
        s.update(42, 3);
        assert_eq!(s.decode(), Decode::One(42, 3));
    }

    #[test]
    fn negative_value_recovered() {
        let mut s = OneSparse::new(777);
        s.update(10, -5);
        assert_eq!(s.decode(), Decode::One(10, -5));
    }

    #[test]
    fn two_items_detected_as_many() {
        let mut s = OneSparse::new(999);
        s.update(3, 1);
        s.update(9, 1);
        assert_eq!(s.decode(), Decode::Many);
    }

    #[test]
    fn cancellation_returns_to_zero() {
        let mut s = OneSparse::new(31337);
        s.update(5, 7);
        s.update(5, -7);
        assert_eq!(s.decode(), Decode::Zero);
    }

    #[test]
    fn merge_is_linear() {
        let mut a = OneSparse::new(55);
        let mut b = OneSparse::new(55);
        a.update(100, 2);
        b.update(100, -2);
        b.update(200, 4);
        a.merge(&b);
        assert_eq!(a.decode(), Decode::One(200, 4));
    }

    #[test]
    fn negate_cancels_with_original() {
        let mut a = OneSparse::new(11);
        a.update(77, 9);
        let mut neg = a;
        neg.negate();
        a.merge(&neg);
        assert_eq!(a.decode(), Decode::Zero);
    }

    #[test]
    fn many_then_reduce_to_one() {
        let mut s = OneSparse::new(2024);
        s.update(1, 1);
        s.update(2, 1);
        s.update(3, 1);
        assert_eq!(s.decode(), Decode::Many);
        s.update(1, -1);
        s.update(3, -1);
        assert_eq!(s.decode(), Decode::One(2, 1));
    }

    #[test]
    #[should_panic]
    fn merging_different_bases_panics() {
        let mut a = OneSparse::new(1);
        let b = OneSparse::new(2);
        a.merge(&b);
    }
}
