//! A directory of session images with a manifest and per-session write-ahead
//! journals.
//!
//! ```text
//! <dir>/manifest.bin    magic "MWMMANI1" | version u32 | payload_len u64
//!                       | checksum u64 | count u32 | (name str, stem str)×
//! <dir>/<stem>.img      a `SessionImage` (see `image`)
//! <dir>/<stem>.wal      magic "MWMWAL01" | frame× (shared frame codec)
//! wal frame payload     tag u8 | 1 = batch:   epoch u64 | updates
//!                              | 2 = compact: overlay version u64
//! ```
//!
//! **Journal discipline.** A batch record is appended only *after* its epoch
//! committed in memory; hibernating a session checkpoints it (fresh image,
//! journal deleted). Recovery therefore revives the last image and replays
//! the journal tail; records whose epoch the image already contains are
//! skipped, so a crash *between* writing the image and truncating the journal
//! is harmless. A torn trailing frame is the crash frontier and is ignored;
//! a corrupt interior record (bad tag, truncated fields inside a complete
//! frame) is a real integrity failure and surfaces as
//! [`PersistError::Corrupt`].

use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use mwm_core::ResourceBudget;
use mwm_dynamic::DynamicMatcher;
use mwm_graph::{read_frame, write_frame, GraphUpdate};

use crate::codec::{self, decode_updates, encode_updates, ByteReader, ByteWriter};
use crate::image::SessionImage;
use crate::{fnv1a, PersistError};

/// Magic bytes opening the manifest.
pub const MANIFEST_MAGIC: &[u8; 8] = b"MWMMANI1";
/// Magic bytes opening every write-ahead journal.
pub const WAL_MAGIC: &[u8; 8] = b"MWMWAL01";

const MANIFEST_VERSION: u32 = 1;
const WAL_TAG_BATCH: u8 = 1;
const WAL_TAG_COMPACT: u8 = 2;

/// One record of a session's write-ahead journal.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// An epoch batch that committed: the epoch index it committed *as*
    /// (`DynamicMatcher::epochs()` before the batch) plus the exact updates.
    Batch {
        /// The committed epoch's index.
        epoch: u64,
        /// The batch, verbatim.
        updates: Vec<GraphUpdate>,
    },
    /// A journal compaction that committed, identified by the overlay
    /// version it produced.
    Compact {
        /// `GraphOverlay::version()` after the compaction.
        version: u64,
    },
}

fn encode_wal_record(rec: &WalRecord) -> Result<Vec<u8>, PersistError> {
    let mut w = ByteWriter::new();
    match rec {
        WalRecord::Batch { epoch, updates } => {
            w.u8(WAL_TAG_BATCH);
            w.u64(*epoch);
            encode_updates(&mut w, updates)?;
        }
        WalRecord::Compact { version } => {
            w.u8(WAL_TAG_COMPACT);
            w.u64(*version);
        }
    }
    Ok(w.into_bytes())
}

fn decode_wal_record(payload: &[u8]) -> Result<WalRecord, String> {
    let mut r = ByteReader::new(payload);
    let rec = match r.u8("wal tag")? {
        WAL_TAG_BATCH => {
            WalRecord::Batch { epoch: r.u64("wal epoch")?, updates: decode_updates(&mut r)? }
        }
        WAL_TAG_COMPACT => WalRecord::Compact { version: r.u64("wal compact version")? },
        tag => return Err(format!("unknown wal record tag {tag}")),
    };
    r.finish("wal record")?;
    Ok(rec)
}

/// A directory-backed store of hibernated sessions.
///
/// Not internally synchronized: the serving layer wraps it in its own lock.
/// Per-session files are only ever touched through the manifest, so two
/// stores on different directories never interfere.
#[derive(Debug)]
pub struct SessionStore {
    dir: PathBuf,
    /// name → file stem. BTreeMap so `names()` is deterministic.
    manifest: BTreeMap<String, String>,
}

impl SessionStore {
    /// Opens (creating if needed) a store at `dir` and loads its manifest.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, PersistError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| PersistError::io(format!("creating store dir {}", dir.display()), e))?;
        let mut store = SessionStore { dir, manifest: BTreeMap::new() };
        store.load_manifest()?;
        Ok(store)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// All stored session names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.manifest.keys().cloned().collect()
    }

    /// True if `name` has a stored image.
    pub fn contains(&self, name: &str) -> bool {
        self.manifest.contains_key(name)
    }

    /// Number of stored sessions.
    pub fn len(&self) -> usize {
        self.manifest.len()
    }

    /// True if the store holds no sessions.
    pub fn is_empty(&self) -> bool {
        self.manifest.is_empty()
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.bin")
    }

    fn image_path(&self, stem: &str) -> PathBuf {
        self.dir.join(format!("{stem}.img"))
    }

    fn wal_path(&self, stem: &str) -> PathBuf {
        self.dir.join(format!("{stem}.wal"))
    }

    fn stem_of(&self, name: &str) -> Result<&str, PersistError> {
        self.manifest
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| PersistError::corrupt(format!("session {name:?} is not in the store")))
    }

    /// Assigns a fresh file stem for `name`: the FNV-1a of the name in hex,
    /// suffixed on (astronomically unlikely) collision with another name.
    fn assign_stem(&self, name: &str) -> String {
        let base = format!("s{:016x}", fnv1a(name.as_bytes()));
        let taken: std::collections::BTreeSet<&String> = self.manifest.values().collect();
        if !taken.contains(&base) {
            return base;
        }
        (1u32..)
            .map(|i| format!("{base}-{i}"))
            .find(|c| !taken.contains(c))
            .expect("unbounded suffix search terminates")
    }

    fn load_manifest(&mut self) -> Result<(), PersistError> {
        let path = self.manifest_path();
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => {
                return Err(PersistError::io(format!("reading manifest {}", path.display()), e))
            }
        };
        let corrupt =
            |what: String| PersistError::corrupt(format!("manifest {}: {what}", path.display()));
        if bytes.len() < 28 {
            return Err(corrupt(format!("{} bytes is shorter than the header", bytes.len())));
        }
        if &bytes[0..8] != MANIFEST_MAGIC {
            return Err(corrupt("bad magic".to_string()));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != MANIFEST_VERSION {
            return Err(corrupt(format!("unsupported version {version}")));
        }
        let declared = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
        let checksum = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
        let payload = &bytes[28..];
        if payload.len() != declared {
            return Err(corrupt(format!(
                "declares {declared} payload bytes but carries {}",
                payload.len()
            )));
        }
        if fnv1a(payload) != checksum {
            return Err(corrupt("checksum mismatch".to_string()));
        }
        let mut r = ByteReader::new(payload);
        let count = r.u32("manifest count").map_err(corrupt)?;
        let mut manifest = BTreeMap::new();
        for _ in 0..count {
            let name = r.str("manifest name").map_err(corrupt)?.to_string();
            let stem = r.str("manifest stem").map_err(corrupt)?.to_string();
            manifest.insert(name, stem);
        }
        r.finish("manifest").map_err(corrupt)?;
        self.manifest = manifest;
        Ok(())
    }

    fn write_manifest(&self) -> Result<(), PersistError> {
        let mut w = ByteWriter::new();
        w.u32(codec::u32_len(self.manifest.len(), "manifest entries")?);
        for (name, stem) in &self.manifest {
            w.str(name)?;
            w.str(stem)?;
        }
        let payload = w.into_bytes();
        let mut out = Vec::with_capacity(28 + payload.len());
        out.extend_from_slice(MANIFEST_MAGIC);
        out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out.extend_from_slice(&payload);

        let path = self.manifest_path();
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, &out)
            .map_err(|e| PersistError::io(format!("writing manifest {}", tmp.display()), e))?;
        fs::rename(&tmp, &path)
            .map_err(|e| PersistError::io(format!("renaming manifest into {}", path.display()), e))
    }

    /// Saves (creating or checkpointing) `name`: a fresh image is written
    /// atomically and the journal is deleted — the image now *is* the state.
    pub fn save(&mut self, name: &str, dm: &DynamicMatcher) -> Result<(), PersistError> {
        let stem = match self.manifest.get(name) {
            Some(stem) => stem.clone(),
            None => {
                let stem = self.assign_stem(name);
                self.manifest.insert(name.to_string(), stem.clone());
                self.write_manifest()?;
                stem
            }
        };
        SessionImage::from_session(dm)?.write(&self.image_path(&stem))?;
        // An absent journal is the common case; removal failure only means a
        // few already-applied records get skipped on the next load.
        fs::remove_file(self.wal_path(&stem)).ok();
        Ok(())
    }

    /// Appends one committed record to `name`'s journal (creating the
    /// journal with its header on first use).
    pub fn append(&self, name: &str, record: &WalRecord) -> Result<(), PersistError> {
        let stem = self.stem_of(name)?;
        let path = self.wal_path(stem);
        let ctx = |what: &str| format!("{what} journal {}", path.display());
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| PersistError::io(ctx("opening"), e))?;
        let fresh = f.metadata().map_err(|e| PersistError::io(ctx("inspecting"), e))?.len() == 0;
        let mut buf = Vec::new();
        if fresh {
            buf.extend_from_slice(WAL_MAGIC);
        }
        // The frame cap guards the record size too: an oversized batch is a
        // typed error here, never a truncated length header on disk.
        write_frame(&mut buf, &encode_wal_record(record)?)
            .map_err(|e| PersistError::io(ctx("framing record for"), e))?;
        f.write_all(&buf).map_err(|e| PersistError::io(ctx("appending to"), e))?;
        f.flush().map_err(|e| PersistError::io(ctx("flushing"), e))
    }

    /// Reads `name`'s journal records. A missing or header-torn journal is
    /// empty; a torn trailing frame (the crash frontier) ends the record
    /// list silently; corrupt interior records are typed errors.
    pub fn journal(&self, name: &str) -> Result<Vec<WalRecord>, PersistError> {
        let stem = self.stem_of(name)?;
        let path = self.wal_path(stem);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => {
                return Err(PersistError::io(format!("reading journal {}", path.display()), e))
            }
        };
        if bytes.len() < WAL_MAGIC.len() {
            // A crash while creating the journal: no complete record exists.
            return Ok(Vec::new());
        }
        if &bytes[0..8] != WAL_MAGIC {
            return Err(PersistError::corrupt(format!("journal {}: bad magic", path.display())));
        }
        let mut records = Vec::new();
        let mut r = &bytes[8..];
        loop {
            match read_frame(&mut r) {
                Ok(Some(payload)) => {
                    let rec = decode_wal_record(&payload).map_err(|e| {
                        PersistError::corrupt(format!("journal {}: {e}", path.display()))
                    })?;
                    records.push(rec);
                }
                Ok(None) => break,
                Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break, // crash tail
                Err(e) => {
                    return Err(PersistError::corrupt(format!("journal {}: {e}", path.display())))
                }
            }
        }
        Ok(records)
    }

    /// Loads `name`: revives the image and replays the journal tail. Returns
    /// the session plus how many journal records were actually replayed
    /// (records the image already contains are skipped — see the module doc).
    pub fn load(&self, name: &str) -> Result<(DynamicMatcher, usize), PersistError> {
        let stem = self.stem_of(name)?;
        let image = SessionImage::open(&self.image_path(stem))?;
        let mut dm = image.restore()?;
        let mut replayed = 0usize;
        for record in self.journal(name)? {
            match record {
                WalRecord::Batch { epoch, updates } => {
                    let current = dm.epochs() as u64;
                    if epoch < current {
                        continue; // already inside the image
                    }
                    if epoch > current {
                        return Err(PersistError::corrupt(format!(
                            "journal of {name:?} jumps to epoch {epoch} while the session is at \
                             {current}"
                        )));
                    }
                    dm.apply_epoch(&updates, &ResourceBudget::unlimited()).map_err(|e| {
                        PersistError::corrupt(format!("replaying epoch {epoch} of {name:?}: {e}"))
                    })?;
                    replayed += 1;
                }
                WalRecord::Compact { version } => {
                    if dm.overlay().version() >= version {
                        continue; // already inside the image
                    }
                    dm.compact();
                    if dm.overlay().version() != version {
                        return Err(PersistError::corrupt(format!(
                            "journal of {name:?} records compaction at version {version} but \
                             replay reached {}",
                            dm.overlay().version()
                        )));
                    }
                    replayed += 1;
                }
            }
        }
        Ok((dm, replayed))
    }

    /// Removes `name` and its files from the store.
    pub fn remove(&mut self, name: &str) -> Result<(), PersistError> {
        let Some(stem) = self.manifest.remove(name) else {
            return Ok(());
        };
        self.write_manifest()?;
        fs::remove_file(self.image_path(&stem)).ok();
        fs::remove_file(self.wal_path(&stem)).ok();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwm_dynamic::DynamicConfig;
    use mwm_graph::Graph;

    fn temp_store(tag: &str) -> SessionStore {
        let dir = std::env::temp_dir().join(format!("mwm-store-{tag}-{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        SessionStore::open(dir).unwrap()
    }

    fn session(seed: f64) -> DynamicMatcher {
        let mut g = Graph::new(6);
        g.add_edge(0, 1, 1.0 + seed);
        g.add_edge(2, 3, 2.0 + seed);
        g.add_edge(4, 5, 3.0 + seed);
        let mut dm = DynamicMatcher::new(&g, DynamicConfig::default()).unwrap();
        dm.apply_epoch(&[], &ResourceBudget::unlimited()).unwrap();
        dm
    }

    #[test]
    fn save_load_round_trips_and_manifest_survives_reopen() {
        let mut store = temp_store("roundtrip");
        let a = session(0.0);
        let b = session(0.5);
        store.save("alpha", &a).unwrap();
        store.save("beta", &b).unwrap();
        assert_eq!(store.names(), vec!["alpha", "beta"]);

        let reopened = SessionStore::open(store.dir().to_path_buf()).unwrap();
        assert_eq!(reopened.names(), vec!["alpha", "beta"]);
        let (loaded, replayed) = reopened.load("alpha").unwrap();
        assert_eq!(replayed, 0);
        assert_eq!(loaded.weight().to_bits(), a.weight().to_bits());
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn journal_replay_reaches_the_committed_state() {
        let mut store = temp_store("replay");
        let mut dm = session(0.0);
        store.save("s", &dm).unwrap();

        // Commit two more epochs, journaling each after the fact.
        for round in 0..2u64 {
            let epoch = dm.epochs() as u64;
            let updates =
                vec![GraphUpdate::InsertEdge { u: 0, v: 3 + round as u32, w: 4.0 + round as f64 }];
            dm.apply_epoch(&updates, &ResourceBudget::unlimited()).unwrap();
            store.append("s", &WalRecord::Batch { epoch, updates }).unwrap();
        }
        let (recovered, replayed) = store.load("s").unwrap();
        assert_eq!(replayed, 2);
        assert_eq!(recovered.epochs(), dm.epochs());
        assert_eq!(recovered.weight().to_bits(), dm.weight().to_bits());

        // Checkpoint: journal gone, records now live in the image.
        store.save("s", &dm).unwrap();
        assert!(store.journal("s").unwrap().is_empty());
        let (after, replayed) = store.load("s").unwrap();
        assert_eq!(replayed, 0);
        assert_eq!(after.weight().to_bits(), dm.weight().to_bits());
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn stale_journal_records_are_skipped_not_reapplied() {
        // Crash between image write and journal truncation: the journal still
        // holds records the image already contains.
        let mut store = temp_store("stale");
        let mut dm = session(0.0);
        store.save("s", &dm).unwrap();
        let epoch = dm.epochs() as u64;
        let updates = vec![GraphUpdate::InsertEdge { u: 1, v: 2, w: 9.0 }];
        dm.apply_epoch(&updates, &ResourceBudget::unlimited()).unwrap();
        store.append("s", &WalRecord::Batch { epoch, updates }).unwrap();

        // Simulate the torn checkpoint: write the image but keep the journal.
        SessionImage::from_session(&dm)
            .unwrap()
            .write(&store.image_path(store.stem_of("s").unwrap()))
            .unwrap();
        let (recovered, replayed) = store.load("s").unwrap();
        assert_eq!(replayed, 0, "the image already contains the journaled epoch");
        assert_eq!(recovered.weight().to_bits(), dm.weight().to_bits());
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn torn_journal_tail_is_ignored_but_interior_corruption_is_typed() {
        let mut store = temp_store("torn");
        let mut dm = session(0.0);
        store.save("s", &dm).unwrap();
        let epoch = dm.epochs() as u64;
        let updates = vec![GraphUpdate::InsertEdge { u: 0, v: 5, w: 2.5 }];
        dm.apply_epoch(&updates, &ResourceBudget::unlimited()).unwrap();
        store.append("s", &WalRecord::Batch { epoch, updates }).unwrap();

        // Tear the last frame: recovery stops at the crash frontier.
        let wal = store.wal_path(store.stem_of("s").unwrap());
        let bytes = fs::read(&wal).unwrap();
        fs::write(&wal, &bytes[..bytes.len() - 3]).unwrap();
        let (recovered, replayed) = store.load("s").unwrap();
        assert_eq!(replayed, 0);
        assert_eq!(recovered.epochs(), 1, "torn record is not replayed");

        // Corrupt an interior byte of a complete frame: typed error.
        let mut interior = bytes.clone();
        let mid = 8 + 4 + 1; // header + length prefix + first payload byte
        interior[mid] = 0xEE;
        fs::write(&wal, &interior).unwrap();
        assert!(matches!(store.load("s"), Err(PersistError::Corrupt { .. })));

        // Garbage journal magic: typed error.
        fs::write(&wal, b"NOTAWAL!rest").unwrap();
        assert!(matches!(store.journal("s"), Err(PersistError::Corrupt { .. })));
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn remove_forgets_the_session_and_its_files() {
        let mut store = temp_store("remove");
        let dm = session(0.0);
        store.save("gone", &dm).unwrap();
        let stem = store.stem_of("gone").unwrap().to_string();
        assert!(store.image_path(&stem).exists());
        store.remove("gone").unwrap();
        assert!(!store.contains("gone"));
        assert!(!store.image_path(&stem).exists());
        assert!(store.load("gone").is_err());
        store.remove("never-existed").unwrap();
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn wal_records_round_trip() {
        for rec in [
            WalRecord::Batch {
                epoch: 5,
                updates: vec![GraphUpdate::DeleteEdge { id: 1 }, GraphUpdate::AddVertex { b: 2 }],
            },
            WalRecord::Batch { epoch: 0, updates: vec![] },
            WalRecord::Compact { version: 99 },
        ] {
            assert_eq!(decode_wal_record(&encode_wal_record(&rec).unwrap()).unwrap(), rec);
        }
        assert!(decode_wal_record(&[9, 9]).is_err());
    }
}
