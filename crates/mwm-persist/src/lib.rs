//! Session persistence for the dynamic matching subsystem.
//!
//! The paper's semi-streaming model assumes working memory far smaller than
//! the input; the out-of-core layer (`mwm-external`) delivers that for
//! *edges*, this crate delivers it for *sessions*. A [`SessionImage`] is a
//! versioned, checksummed binary serialization of a full
//! [`mwm_dynamic::DynamicMatcher`] session — base-graph parameters, the
//! journaled overlay, the maintained matching, the last committed
//! [`mwm_lp::DualSnapshot`], and the epoch ledger — such that
//! `hibernate → revive` restores a session **bit-identical** to the
//! original: every subsequent epoch produces the same weight bits, matching
//! and duals as if the session had stayed resident.
//!
//! On top of the image sits a [`SessionStore`]: a directory of images plus a
//! small manifest and one write-ahead journal per session. Epoch batches are
//! journaled *after* they commit, so a crash between commits loses nothing:
//! recovery revives the last image and replays the journal tail, and a torn
//! trailing record (the crash frontier) is cleanly ignored while a corrupt
//! interior record surfaces as a typed [`PersistError::Corrupt`].
//!
//! All framing uses the shared length-prefixed codec of
//! [`mwm_graph::wire`], and all multi-byte integers are little-endian with
//! floats travelling as IEEE-754 bit patterns — the same validated-header
//! discipline as the out-of-core spill format.

pub mod codec;
pub mod image;
pub mod store;

use std::fmt;

pub use image::{Hibernate, SessionImage, IMAGE_MAGIC, IMAGE_VERSION};
pub use store::{SessionStore, WalRecord};

/// Typed persistence failures. Never panics: torn files, bad magic, bad
/// checksums and truncated payloads all decode into [`PersistError::Corrupt`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PersistError {
    /// An underlying filesystem operation failed (the formatted OS error is
    /// folded into the context so the error stays `Clone`).
    Io {
        /// What was being done, on which path, and the OS error text.
        context: String,
    },
    /// A file exists but its contents are not a valid image/journal/manifest.
    Corrupt {
        /// What failed validation and where.
        context: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { context } => write!(f, "persistence I/O error: {context}"),
            PersistError::Corrupt { context } => write!(f, "corrupt persistence data: {context}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl PersistError {
    /// Wraps an I/O error with its operation context.
    pub fn io(context: impl fmt::Display, err: std::io::Error) -> Self {
        PersistError::Io { context: format!("{context}: {err}") }
    }

    /// A corruption finding.
    pub fn corrupt(context: impl Into<String>) -> Self {
        PersistError::Corrupt { context: context.into() }
    }
}

/// FNV-1a over a byte slice — the checksum of images, journals and manifests.
/// Stable by definition (no hasher randomization), cheap, and sensitive to
/// any single flipped bit, which is all a torn-write detector needs.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_bit_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        let a = fnv1a(b"session");
        let mut flipped = b"session".to_vec();
        flipped[3] ^= 1;
        assert_ne!(a, fnv1a(&flipped));
        assert_eq!(a, fnv1a(b"session"));
    }

    #[test]
    fn errors_display_their_context() {
        let e = PersistError::corrupt("image header: bad magic");
        assert!(format!("{e}").contains("bad magic"));
        let io = PersistError::io("writing image", std::io::Error::other("disk full"));
        assert!(format!("{io}").contains("disk full"));
    }
}
