//! The field-level binary codec shared by session images, write-ahead
//! journals and the socket wire protocol.
//!
//! Everything is little-endian; floats travel as IEEE-754 bit patterns
//! (`to_bits`/`from_bits`), so values round-trip bit-exactly — including
//! negative zero and every NaN payload — which is what the workspace's
//! bit-identical determinism contract requires of a persistence layer.
//! Decoders never panic: truncation, bad tags and non-UTF-8 strings all
//! come back as descriptive `Err(String)`s for the caller to wrap in its own
//! error type.

use crate::PersistError;
use mwm_dynamic::{DynamicConfig, EpochAudit, EpochDecision, EpochStats, IngestMode, SessionState};
use mwm_graph::{Edge, Graph, GraphUpdate, OverlayState};
use mwm_lp::{DualSnapshot, OddSetDual, VertexDual};
use mwm_mapreduce::TrackerCounters;
use mwm_turnstile::SketchBankState;

/// An append-only byte sink with typed little-endian put methods.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16` (LE).
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` (LE).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (LE).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its exact bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends a string as `len: u32` + UTF-8 bytes. Fails if the string
    /// is too long for the `u32` length prefix.
    pub fn str(&mut self, s: &str) -> Result<(), PersistError> {
        self.u32(u32_len(s.len(), "string")?);
        self.buf.extend_from_slice(s.as_bytes());
        Ok(())
    }

    /// Appends raw bytes as `len: u32` + bytes. Fails if the slice is too
    /// long for the `u32` length prefix.
    pub fn bytes(&mut self, b: &[u8]) -> Result<(), PersistError> {
        self.u32(u32_len(b.len(), "byte slice")?);
        self.buf.extend_from_slice(b);
        Ok(())
    }
}

/// Checked narrowing of a collection length to the codec's `u32` count
/// prefix. An unchecked `len() as u32` would wrap for collections over
/// `u32::MAX` entries and encode an image whose count prefixes disagree
/// with the payload — corruption the decoder cannot distinguish from bit
/// rot. Every count-prefix encode site must go through this helper.
pub fn u32_len(len: usize, what: &str) -> Result<u32, PersistError> {
    u32::try_from(len).map_err(|_| {
        PersistError::corrupt(format!("{what} length {len} exceeds the u32 count prefix"))
    })
}

/// A cursor over encoded bytes whose typed take methods fail with a
/// description instead of panicking on truncation.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, at: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.at..end];
                self.at = end;
                Ok(slice)
            }
            None => Err(format!("truncated while reading {what}")),
        }
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a `u16` (LE).
    pub fn u16(&mut self, what: &str) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().expect("2 bytes")))
    }

    /// Reads a `u32` (LE).
    pub fn u32(&mut self, what: &str) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    /// Reads a `u64` (LE).
    pub fn u64(&mut self, what: &str) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self, what: &str) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Reads a bool, rejecting bytes other than 0/1 (a corrupt image must
    /// not silently coerce).
    pub fn bool(&mut self, what: &str) -> Result<bool, String> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(format!("{what} has non-boolean byte {b}")),
        }
    }

    /// Reads a `len: u32`-prefixed UTF-8 string.
    pub fn str(&mut self, what: &str) -> Result<&'a str, String> {
        let len = self.u32(what)? as usize;
        std::str::from_utf8(self.take(len, what)?).map_err(|_| format!("{what} is not UTF-8"))
    }

    /// Reads `len: u32`-prefixed raw bytes.
    pub fn bytes(&mut self, what: &str) -> Result<&'a [u8], String> {
        let len = self.u32(what)? as usize;
        self.take(len, what)
    }

    /// Asserts the reader consumed the buffer exactly.
    pub fn finish(self, what: &str) -> Result<(), String> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(format!("{} trailing bytes after {what}", self.buf.len() - self.at))
        }
    }
}

/// A sanity cap on decoded element counts (64M): a corrupt length field must
/// fail fast, not drive a multi-gigabyte allocation.
const MAX_COUNT: usize = 1 << 26;

fn checked_count(n: u64, what: &str) -> Result<usize, String> {
    let n = n as usize;
    if n > MAX_COUNT {
        return Err(format!("{what} count {n} exceeds sanity cap {MAX_COUNT}"));
    }
    Ok(n)
}

// ---- graph updates -------------------------------------------------------

const UPD_INSERT: u8 = 1;
const UPD_DELETE: u8 = 2;
const UPD_REWEIGHT: u8 = 3;
const UPD_ADD_VERTEX: u8 = 4;
const UPD_REMOVE_VERTEX: u8 = 5;
const UPD_SET_CAPACITY: u8 = 6;
const UPD_EXPIRE_WINDOW: u8 = 7;

/// Encodes one [`GraphUpdate`].
pub fn encode_update(w: &mut ByteWriter, u: &GraphUpdate) {
    match *u {
        GraphUpdate::InsertEdge { u, v, w: wt } => {
            w.u8(UPD_INSERT);
            w.u32(u);
            w.u32(v);
            w.f64(wt);
        }
        GraphUpdate::DeleteEdge { id } => {
            w.u8(UPD_DELETE);
            w.u64(id as u64);
        }
        GraphUpdate::ReweightEdge { id, w: wt } => {
            w.u8(UPD_REWEIGHT);
            w.u64(id as u64);
            w.f64(wt);
        }
        GraphUpdate::AddVertex { b } => {
            w.u8(UPD_ADD_VERTEX);
            w.u64(b);
        }
        GraphUpdate::RemoveVertex { v } => {
            w.u8(UPD_REMOVE_VERTEX);
            w.u32(v);
        }
        GraphUpdate::SetCapacity { v, b } => {
            w.u8(UPD_SET_CAPACITY);
            w.u32(v);
            w.u64(b);
        }
        GraphUpdate::ExpireWindow { lo, hi } => {
            w.u8(UPD_EXPIRE_WINDOW);
            w.u64(lo as u64);
            w.u64(hi as u64);
        }
    }
}

/// Decodes one [`GraphUpdate`].
pub fn decode_update(r: &mut ByteReader<'_>) -> Result<GraphUpdate, String> {
    match r.u8("update tag")? {
        UPD_INSERT => Ok(GraphUpdate::InsertEdge {
            u: r.u32("insert u")?,
            v: r.u32("insert v")?,
            w: r.f64("insert weight")?,
        }),
        UPD_DELETE => Ok(GraphUpdate::DeleteEdge { id: r.u64("delete id")? as usize }),
        UPD_REWEIGHT => Ok(GraphUpdate::ReweightEdge {
            id: r.u64("reweight id")? as usize,
            w: r.f64("reweight weight")?,
        }),
        UPD_ADD_VERTEX => Ok(GraphUpdate::AddVertex { b: r.u64("add-vertex capacity")? }),
        UPD_REMOVE_VERTEX => Ok(GraphUpdate::RemoveVertex { v: r.u32("remove vertex")? }),
        UPD_SET_CAPACITY => Ok(GraphUpdate::SetCapacity {
            v: r.u32("set-capacity vertex")?,
            b: r.u64("set-capacity value")?,
        }),
        UPD_EXPIRE_WINDOW => Ok(GraphUpdate::ExpireWindow {
            lo: r.u64("expire-window lo")? as usize,
            hi: r.u64("expire-window hi")? as usize,
        }),
        tag => Err(format!("unknown update tag {tag}")),
    }
}

/// Encodes a batch of updates with a count prefix.
pub fn encode_updates(w: &mut ByteWriter, updates: &[GraphUpdate]) -> Result<(), PersistError> {
    w.u32(u32_len(updates.len(), "update batch")?);
    for u in updates {
        encode_update(w, u);
    }
    Ok(())
}

/// Decodes a count-prefixed batch of updates.
pub fn decode_updates(r: &mut ByteReader<'_>) -> Result<Vec<GraphUpdate>, String> {
    let n = checked_count(u64::from(r.u32("update count")?), "update")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(decode_update(r)?);
    }
    Ok(out)
}

// ---- dynamic config ------------------------------------------------------

fn encode_ingest(w: &mut ByteWriter, mode: IngestMode) {
    w.u8(match mode {
        IngestMode::Journal => 1,
        IngestMode::Turnstile => 2,
        IngestMode::Auto => 3,
    });
}

fn decode_ingest(r: &mut ByteReader<'_>) -> Result<IngestMode, String> {
    match r.u8("config ingest mode")? {
        1 => Ok(IngestMode::Journal),
        2 => Ok(IngestMode::Turnstile),
        3 => Ok(IngestMode::Auto),
        tag => Err(format!("unknown ingest mode {tag}")),
    }
}

/// Encodes a [`DynamicConfig`].
pub fn encode_config(w: &mut ByteWriter, c: &DynamicConfig) {
    w.f64(c.eps);
    w.f64(c.p);
    w.u64(c.seed);
    w.u64(c.parallelism as u64);
    w.f64(c.repair_threshold);
    w.f64(c.rebuild_threshold);
    w.f64(c.dual_decay);
    w.u64(c.audit_every as u64);
    encode_ingest(w, c.ingest);
    w.f64(c.turnstile_enter);
    w.f64(c.turnstile_exit);
    w.f64(c.turnstile_max_weight);
    w.u64(c.turnstile_reps as u64);
}

/// Decodes a [`DynamicConfig`] (semantic validation is the importer's job).
pub fn decode_config(r: &mut ByteReader<'_>) -> Result<DynamicConfig, String> {
    Ok(DynamicConfig {
        eps: r.f64("config eps")?,
        p: r.f64("config p")?,
        seed: r.u64("config seed")?,
        parallelism: r.u64("config parallelism")? as usize,
        repair_threshold: r.f64("config repair_threshold")?,
        rebuild_threshold: r.f64("config rebuild_threshold")?,
        dual_decay: r.f64("config dual_decay")?,
        audit_every: r.u64("config audit_every")? as usize,
        ingest: decode_ingest(r)?,
        turnstile_enter: r.f64("config turnstile_enter")?,
        turnstile_exit: r.f64("config turnstile_exit")?,
        turnstile_max_weight: r.f64("config turnstile_max_weight")?,
        turnstile_reps: r.u64("config turnstile_reps")? as usize,
    })
}

// ---- dual snapshots ------------------------------------------------------

/// Encodes a [`DualSnapshot`] field by field (bit-exact floats).
pub fn encode_duals(w: &mut ByteWriter, d: &DualSnapshot) -> Result<(), PersistError> {
    w.f64(d.eps);
    w.f64(d.scale);
    w.u64(d.num_levels as u64);
    w.u32(u32_len(d.vertex_duals.len(), "vertex-dual list")?);
    for vd in &d.vertex_duals {
        w.u32(vd.vertex);
        w.u64(vd.level as u64);
        w.f64(vd.level_weight);
        w.f64(vd.value);
    }
    w.u32(u32_len(d.odd_sets.len(), "odd-set list")?);
    for os in &d.odd_sets {
        w.u64(os.level as u64);
        w.f64(os.level_weight);
        w.u32(u32_len(os.members.len(), "odd-set members")?);
        for &m in &os.members {
            w.u32(m);
        }
        w.f64(os.value);
    }
    Ok(())
}

/// Decodes a [`DualSnapshot`].
pub fn decode_duals(r: &mut ByteReader<'_>) -> Result<DualSnapshot, String> {
    let eps = r.f64("duals eps")?;
    let scale = r.f64("duals scale")?;
    let num_levels = r.u64("duals num_levels")? as usize;
    let vn = checked_count(u64::from(r.u32("vertex-dual count")?), "vertex-dual")?;
    let mut vertex_duals = Vec::with_capacity(vn);
    for _ in 0..vn {
        vertex_duals.push(VertexDual {
            vertex: r.u32("vertex-dual vertex")?,
            level: r.u64("vertex-dual level")? as usize,
            level_weight: r.f64("vertex-dual level weight")?,
            value: r.f64("vertex-dual value")?,
        });
    }
    let on = checked_count(u64::from(r.u32("odd-set count")?), "odd-set")?;
    let mut odd_sets = Vec::with_capacity(on);
    for _ in 0..on {
        let level = r.u64("odd-set level")? as usize;
        let level_weight = r.f64("odd-set level weight")?;
        let mn = checked_count(u64::from(r.u32("odd-set member count")?), "odd-set member")?;
        let mut members = Vec::with_capacity(mn);
        for _ in 0..mn {
            members.push(r.u32("odd-set member")?);
        }
        let value = r.f64("odd-set value")?;
        odd_sets.push(OddSetDual { level, level_weight, members, value });
    }
    Ok(DualSnapshot { eps, scale, num_levels, vertex_duals, odd_sets })
}

// ---- epoch ledger --------------------------------------------------------

fn encode_decision(w: &mut ByteWriter, d: EpochDecision) {
    w.u8(match d {
        EpochDecision::Repair => 1,
        EpochDecision::WarmResolve => 2,
        EpochDecision::Rebuild => 3,
    });
}

fn decode_decision(r: &mut ByteReader<'_>) -> Result<EpochDecision, String> {
    match r.u8("epoch decision")? {
        1 => Ok(EpochDecision::Repair),
        2 => Ok(EpochDecision::WarmResolve),
        3 => Ok(EpochDecision::Rebuild),
        tag => Err(format!("unknown epoch decision {tag}")),
    }
}

/// Encodes one [`EpochStats`] ledger row.
pub fn encode_stats(w: &mut ByteWriter, s: &EpochStats) {
    w.u64(s.epoch as u64);
    w.u64(s.version);
    w.u64(s.updates_applied as u64);
    w.u64(s.updates_rejected as u64);
    w.u64(s.inserts as u64);
    w.u64(s.deletes as u64);
    w.u64(s.reweights as u64);
    w.u64(s.vertex_ops as u64);
    w.u64(s.capacity_ops as u64);
    w.u64(s.touched_vertices as u64);
    w.f64(s.damage_ratio);
    encode_decision(w, s.decision);
    w.u64(s.epoch_rounds as u64);
    w.u64(s.solver_rounds as u64);
    w.u64(s.streamed_items as u64);
    w.f64(s.weight);
    w.u64(s.matching_edges as u64);
    w.bool(s.sketch_mode);
    w.u64(s.candidate_edges as u64);
    w.u64(s.region_edges as u64);
    w.u64(s.journal_bytes as u64);
    w.u64(s.sketch_bytes as u64);
    match &s.audit {
        None => w.u8(0),
        Some(a) => {
            w.u8(1);
            w.f64(a.oracle_weight);
            w.f64(a.weight_drift);
            w.bool(a.feasible);
        }
    }
}

/// Decodes one [`EpochStats`] ledger row.
pub fn decode_stats(r: &mut ByteReader<'_>) -> Result<EpochStats, String> {
    Ok(EpochStats {
        epoch: r.u64("stats epoch")? as usize,
        version: r.u64("stats version")?,
        updates_applied: r.u64("stats applied")? as usize,
        updates_rejected: r.u64("stats rejected")? as usize,
        inserts: r.u64("stats inserts")? as usize,
        deletes: r.u64("stats deletes")? as usize,
        reweights: r.u64("stats reweights")? as usize,
        vertex_ops: r.u64("stats vertex ops")? as usize,
        capacity_ops: r.u64("stats capacity ops")? as usize,
        touched_vertices: r.u64("stats touched")? as usize,
        damage_ratio: r.f64("stats damage ratio")?,
        decision: decode_decision(r)?,
        epoch_rounds: r.u64("stats epoch rounds")? as usize,
        solver_rounds: r.u64("stats solver rounds")? as usize,
        streamed_items: r.u64("stats streamed")? as usize,
        weight: r.f64("stats weight")?,
        matching_edges: r.u64("stats matching edges")? as usize,
        sketch_mode: r.bool("stats sketch mode")?,
        candidate_edges: r.u64("stats candidate edges")? as usize,
        region_edges: r.u64("stats region edges")? as usize,
        journal_bytes: r.u64("stats journal bytes")? as usize,
        sketch_bytes: r.u64("stats sketch bytes")? as usize,
        audit: match r.u8("stats audit flag")? {
            0 => None,
            1 => Some(EpochAudit {
                oracle_weight: r.f64("audit oracle weight")?,
                weight_drift: r.f64("audit drift")?,
                feasible: r.bool("audit feasible")?,
            }),
            b => return Err(format!("audit flag has invalid byte {b}")),
        },
    })
}

// ---- graphs --------------------------------------------------------------

/// Encodes a [`Graph`] as capacities + edges (bit-exact weights).
pub fn encode_graph(w: &mut ByteWriter, g: &Graph) -> Result<(), PersistError> {
    w.u32(u32_len(g.num_vertices(), "graph vertices")?);
    for v in 0..g.num_vertices() {
        w.u64(g.b(v as u32));
    }
    w.u32(u32_len(g.num_edges(), "graph edges")?);
    for e in g.edges() {
        w.u32(e.u);
        w.u32(e.v);
        w.f64(e.w);
    }
    Ok(())
}

/// Decodes a [`Graph`] written by [`encode_graph`].
pub fn decode_graph(r: &mut ByteReader<'_>) -> Result<Graph, String> {
    let n = checked_count(u64::from(r.u32("vertex count")?), "vertex")?;
    let mut caps = Vec::with_capacity(n);
    for _ in 0..n {
        caps.push(r.u64("vertex capacity")?);
    }
    let mut g = Graph::with_capacities(caps);
    let m = checked_count(u64::from(r.u32("edge count")?), "edge")?;
    for _ in 0..m {
        let u = r.u32("edge u")?;
        let v = r.u32("edge v")?;
        let wt = r.f64("edge weight")?;
        if u as usize >= n || v as usize >= n {
            return Err(format!("edge ({u},{v}) outside {n} vertices"));
        }
        if u == v {
            return Err(format!("self-loop at vertex {u}"));
        }
        if !wt.is_finite() || wt <= 0.0 {
            return Err(format!("edge ({u},{v}) has invalid weight {wt}"));
        }
        g.add_edge(u, v, wt);
    }
    Ok(g)
}

// ---- full session state --------------------------------------------------

fn encode_overlay(w: &mut ByteWriter, o: &OverlayState) -> Result<(), PersistError> {
    w.u64(o.base as u64);
    w.u32(u32_len(o.edges.len(), "overlay edges")?);
    for e in &o.edges {
        w.u32(e.u);
        w.u32(e.v);
        w.f64(e.w);
    }
    for &a in &o.alive {
        w.bool(a);
    }
    w.u32(u32_len(o.capacities.len(), "overlay capacities")?);
    for &b in &o.capacities {
        w.u64(b);
    }
    for &d in &o.removed {
        w.bool(d);
    }
    w.u64(o.version);
    w.u64(o.applied);
    Ok(())
}

fn decode_overlay(r: &mut ByteReader<'_>) -> Result<OverlayState, String> {
    let base = r.u64("overlay base")? as usize;
    let m = checked_count(u64::from(r.u32("overlay edge count")?), "overlay edge")?;
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        // Constructed literally: the journal must round-trip any bit pattern
        // the overlay accepted (the importer re-validates invariants).
        edges.push(Edge {
            u: r.u32("overlay edge u")?,
            v: r.u32("overlay edge v")?,
            w: r.f64("overlay edge weight")?,
        });
    }
    let mut alive = Vec::with_capacity(m);
    for _ in 0..m {
        alive.push(r.bool("overlay alive bit")?);
    }
    let n = checked_count(u64::from(r.u32("overlay vertex count")?), "overlay vertex")?;
    let mut capacities = Vec::with_capacity(n);
    for _ in 0..n {
        capacities.push(r.u64("overlay capacity")?);
    }
    let mut removed = Vec::with_capacity(n);
    for _ in 0..n {
        removed.push(r.bool("overlay removed bit")?);
    }
    Ok(OverlayState {
        base,
        edges,
        alive,
        capacities,
        removed,
        version: r.u64("overlay version")?,
        applied: r.u64("overlay applied")?,
    })
}

// ---- sketch banks --------------------------------------------------------

/// Encodes a [`SketchBankState`] (the hibernated turnstile sketch bank).
pub fn encode_bank(w: &mut ByteWriter, b: &SketchBankState) -> Result<(), PersistError> {
    w.u64(b.num_vertices);
    w.u64(b.eps_bits);
    w.u64(b.scale_bits);
    w.u64(b.max_scaled_bits);
    w.u64(b.forest_copies);
    w.u64(b.reps);
    w.u64(b.seed);
    w.u32(u32_len(b.class_support.len(), "bank class support")?);
    for &s in &b.class_support {
        w.u64(s as u64);
    }
    w.u32(u32_len(b.cell_words.len(), "bank cell words")?);
    for &word in &b.cell_words {
        w.u64(word);
    }
    Ok(())
}

/// Decodes a [`SketchBankState`]. Structural errors only — shape validation
/// against the session config happens in `SketchBank::from_state`.
pub fn decode_bank(r: &mut ByteReader<'_>) -> Result<SketchBankState, String> {
    let num_vertices = r.u64("bank num_vertices")?;
    let eps_bits = r.u64("bank eps bits")?;
    let scale_bits = r.u64("bank scale bits")?;
    let max_scaled_bits = r.u64("bank max_scaled bits")?;
    let forest_copies = r.u64("bank forest copies")?;
    let reps = r.u64("bank reps")?;
    let seed = r.u64("bank seed")?;
    let sn = checked_count(u64::from(r.u32("bank support count")?), "bank support")?;
    let mut class_support = Vec::with_capacity(sn);
    for _ in 0..sn {
        class_support.push(r.u64("bank support entry")? as i64);
    }
    let cn = checked_count(u64::from(r.u32("bank cell word count")?), "bank cell word")?;
    let mut cell_words = Vec::with_capacity(cn);
    for _ in 0..cn {
        cell_words.push(r.u64("bank cell word")?);
    }
    Ok(SketchBankState {
        num_vertices,
        eps_bits,
        scale_bits,
        max_scaled_bits,
        forest_copies,
        reps,
        seed,
        class_support,
        cell_words,
    })
}

/// Encodes a complete [`SessionState`].
pub fn encode_session_state(w: &mut ByteWriter, s: &SessionState) -> Result<(), PersistError> {
    encode_config(w, &s.config);
    encode_overlay(w, &s.overlay)?;
    w.u32(u32_len(s.matching.len(), "matching entries")?);
    for &(id, e, mult) in &s.matching {
        w.u64(id as u64);
        w.u32(e.u);
        w.u32(e.v);
        w.f64(e.w);
        w.u64(mult);
    }
    match &s.duals {
        None => w.u8(0),
        Some(d) => {
            w.u8(1);
            encode_duals(w, d)?;
        }
    }
    w.u64(s.epoch);
    w.bool(s.bootstrapped);
    w.u32(u32_len(s.ledger.len(), "ledger rows")?);
    for row in &s.ledger {
        encode_stats(w, row);
    }
    let t = &s.tracker;
    w.u64(t.rounds);
    w.u64(t.current_central_space);
    w.u64(t.peak_central_space);
    w.u64(t.shuffle_volume);
    w.u64(t.peak_machine_space);
    w.u64(t.items_streamed);
    match &s.bank {
        None => w.u8(0),
        Some(b) => {
            w.u8(1);
            encode_bank(w, b)?;
        }
    }
    Ok(())
}

/// Decodes a complete [`SessionState`]. Structural errors only — semantic
/// validation (overlay invariants, matching liveness, config ranges) happens
/// in `DynamicMatcher::import_state`.
pub fn decode_session_state(r: &mut ByteReader<'_>) -> Result<SessionState, String> {
    let config = decode_config(r)?;
    let overlay = decode_overlay(r)?;
    let mn = checked_count(u64::from(r.u32("matching entry count")?), "matching entry")?;
    let mut matching = Vec::with_capacity(mn);
    for _ in 0..mn {
        let id = r.u64("matching id")? as usize;
        let e = Edge {
            u: r.u32("matching edge u")?,
            v: r.u32("matching edge v")?,
            w: r.f64("matching edge weight")?,
        };
        let mult = r.u64("matching multiplicity")?;
        matching.push((id, e, mult));
    }
    let duals = match r.u8("duals flag")? {
        0 => None,
        1 => Some(decode_duals(r)?),
        b => return Err(format!("duals flag has invalid byte {b}")),
    };
    let epoch = r.u64("session epoch")?;
    let bootstrapped = r.bool("session bootstrapped")?;
    let ln = checked_count(u64::from(r.u32("ledger row count")?), "ledger row")?;
    let mut ledger = Vec::with_capacity(ln);
    for _ in 0..ln {
        ledger.push(decode_stats(r)?);
    }
    let tracker = TrackerCounters {
        rounds: r.u64("tracker rounds")?,
        current_central_space: r.u64("tracker current central")?,
        peak_central_space: r.u64("tracker peak central")?,
        shuffle_volume: r.u64("tracker shuffle")?,
        peak_machine_space: r.u64("tracker peak machine")?,
        items_streamed: r.u64("tracker streamed")?,
    };
    let bank = match r.u8("bank flag")? {
        0 => None,
        1 => Some(decode_bank(r)?),
        b => return Err(format!("bank flag has invalid byte {b}")),
    };
    Ok(SessionState {
        config,
        overlay,
        matching,
        duals,
        epoch,
        bootstrapped,
        ledger,
        tracker,
        bank,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn updates_round_trip_every_variant() {
        let updates = vec![
            GraphUpdate::InsertEdge { u: 1, v: 2, w: 0.1 + 0.2 },
            GraphUpdate::DeleteEdge { id: 7 },
            GraphUpdate::ReweightEdge { id: 3, w: 5.5 },
            GraphUpdate::AddVertex { b: 4 },
            GraphUpdate::RemoveVertex { v: 9 },
            GraphUpdate::SetCapacity { v: 0, b: 2 },
            GraphUpdate::ExpireWindow { lo: 3, hi: 11 },
        ];
        let mut w = ByteWriter::new();
        encode_updates(&mut w, &updates).unwrap();
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = decode_updates(&mut r).unwrap();
        r.finish("updates").unwrap();
        assert_eq!(back, updates);
    }

    #[test]
    fn duals_round_trip_bit_exactly() {
        let d = DualSnapshot {
            eps: 0.2,
            scale: 1.5,
            num_levels: 7,
            vertex_duals: vec![VertexDual { vertex: 3, level: 2, level_weight: 1.44, value: -0.0 }],
            odd_sets: vec![OddSetDual {
                level: 1,
                level_weight: 1.2,
                members: vec![1, 2, 5],
                value: 0.25,
            }],
        };
        let mut w = ByteWriter::new();
        encode_duals(&mut w, &d).unwrap();
        let bytes = w.into_bytes();
        let back = decode_duals(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back.fingerprint(), d.fingerprint(), "bit-exact round trip");
    }

    #[test]
    fn graphs_round_trip_and_reject_malformed() {
        let mut g = Graph::with_capacities(vec![1, 2, 1]);
        g.add_edge(0, 1, 1.25);
        g.add_edge(1, 2, 3.5);
        let mut w = ByteWriter::new();
        encode_graph(&mut w, &g).unwrap();
        let bytes = w.into_bytes();
        let back = decode_graph(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back.num_vertices(), 3);
        assert_eq!(back.num_edges(), 2);
        assert_eq!(back.total_weight().to_bits(), g.total_weight().to_bits());
        assert_eq!(back.b(1), 2);

        // Edge endpoint outside the vertex count must be rejected.
        let mut w = ByteWriter::new();
        w.u32(2);
        w.u64(1);
        w.u64(1);
        w.u32(1);
        w.u32(0);
        w.u32(5);
        w.f64(1.0);
        assert!(decode_graph(&mut ByteReader::new(&w.into_bytes())).is_err());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        encode_update(&mut w, &GraphUpdate::InsertEdge { u: 0, v: 1, w: 1.0 });
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(decode_update(&mut r).is_err(), "cut at {cut} must error");
        }
    }

    #[test]
    fn u32_len_accepts_u32_range_and_rejects_overflow() {
        assert_eq!(u32_len(0, "x").unwrap(), 0);
        assert_eq!(u32_len(u32::MAX as usize, "x").unwrap(), u32::MAX);
        let err = u32_len(u32::MAX as usize + 1, "widget list").unwrap_err();
        match err {
            PersistError::Corrupt { context } => {
                assert!(context.contains("widget list"), "context names the field: {context}");
                assert!(context.contains("u32"), "context names the prefix: {context}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn insane_counts_fail_fast() {
        let mut w = ByteWriter::new();
        w.u32(u32::MAX);
        assert!(decode_updates(&mut ByteReader::new(&w.into_bytes()))
            .unwrap_err()
            .contains("sanity cap"));
    }
}
