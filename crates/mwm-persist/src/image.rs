//! The session image: a versioned, checksummed on-disk serialization of a
//! complete [`DynamicMatcher`] session.
//!
//! ```text
//! image     magic "MWMSESS1" (8) | version u32 | payload_len u64
//!           | checksum u64 (FNV-1a of payload) | payload
//! payload   encode_session_state(SessionState)   (see `codec`)
//! ```
//!
//! All integers little-endian. `open` validates magic, version, exact file
//! length and checksum before a single payload byte is decoded — the same
//! validated-header discipline as the out-of-core spill format — so torn and
//! tampered files surface as typed [`PersistError::Corrupt`] rather than
//! panics or garbage sessions. Writes go through a temp file + atomic rename,
//! so a crash mid-write can never leave a half-image under the real name.

use std::fs;
use std::io::Write;
use std::path::Path;

use mwm_dynamic::DynamicMatcher;

use crate::codec::{decode_session_state, encode_session_state, ByteReader, ByteWriter};
use crate::{fnv1a, PersistError};

/// Magic bytes opening every session image.
pub const IMAGE_MAGIC: &[u8; 8] = b"MWMSESS1";
/// Current image format version. Version 2 added the turnstile fields:
/// overlay journal base, the extended config/stats columns and the optional
/// hibernated sketch bank.
pub const IMAGE_VERSION: u32 = 2;

const HEADER_BYTES: usize = 8 + 4 + 8 + 8;

/// A validated, immutable session image (the encoded payload plus its
/// checksum). Encoding and every decoding path are typed-fallible: a
/// session whose collections overflow the codec's `u32` count prefixes
/// surfaces as [`PersistError::Corrupt`] instead of a corrupt image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionImage {
    payload: Vec<u8>,
    checksum: u64,
}

impl SessionImage {
    /// Serializes a session into an image (`O(journal + ledger)`).
    pub fn from_session(dm: &DynamicMatcher) -> Result<SessionImage, PersistError> {
        let mut w = ByteWriter::new();
        encode_session_state(&mut w, &dm.export_state())?;
        let payload = w.into_bytes();
        let checksum = fnv1a(&payload);
        Ok(SessionImage { payload, checksum })
    }

    /// Decodes and revalidates the image into a live session. The decoded
    /// state passes through `DynamicMatcher::import_state`, so structural
    /// *and* semantic corruption both surface as [`PersistError::Corrupt`].
    pub fn restore(&self) -> Result<DynamicMatcher, PersistError> {
        let mut r = ByteReader::new(&self.payload);
        let state = decode_session_state(&mut r)
            .map_err(|e| PersistError::corrupt(format!("image payload: {e}")))?;
        r.finish("session payload").map_err(|e| PersistError::corrupt(format!("image: {e}")))?;
        DynamicMatcher::import_state(state)
            .map_err(|e| PersistError::corrupt(format!("image state: {e}")))
    }

    /// FNV-1a checksum of the payload.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Encoded payload length in bytes (without the header).
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// The full on-disk byte representation (header + payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_BYTES + self.payload.len());
        out.extend_from_slice(IMAGE_MAGIC);
        out.extend_from_slice(&IMAGE_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.checksum.to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses and fully validates an in-memory image: magic, version,
    /// declared vs actual length, and checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<SessionImage, PersistError> {
        if bytes.len() < HEADER_BYTES {
            return Err(PersistError::corrupt(format!(
                "image of {} bytes is shorter than the {HEADER_BYTES}-byte header",
                bytes.len()
            )));
        }
        if &bytes[0..8] != IMAGE_MAGIC {
            return Err(PersistError::corrupt("image header: bad magic"));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != IMAGE_VERSION {
            return Err(PersistError::corrupt(format!(
                "image version {version} is not the supported version {IMAGE_VERSION}"
            )));
        }
        let declared = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
        let checksum = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
        let payload = &bytes[HEADER_BYTES..];
        if payload.len() != declared {
            return Err(PersistError::corrupt(format!(
                "image declares {declared} payload bytes but carries {}",
                payload.len()
            )));
        }
        let actual = fnv1a(payload);
        if actual != checksum {
            return Err(PersistError::corrupt(format!(
                "image checksum mismatch: header says {checksum:#018x}, payload hashes to \
                 {actual:#018x}"
            )));
        }
        Ok(SessionImage { payload: payload.to_vec(), checksum })
    }

    /// Writes the image to `path` atomically: a `.tmp` sibling is written,
    /// flushed and renamed over the destination, so readers never observe a
    /// partially written image under the real name.
    pub fn write(&self, path: &Path) -> Result<(), PersistError> {
        let tmp = path.with_extension("tmp");
        let ctx = |what: &str| format!("{what} {}", tmp.display());
        let mut f = fs::File::create(&tmp).map_err(|e| PersistError::io(ctx("creating"), e))?;
        f.write_all(&self.to_bytes()).map_err(|e| PersistError::io(ctx("writing"), e))?;
        f.sync_all().map_err(|e| PersistError::io(ctx("syncing"), e))?;
        drop(f);
        fs::rename(&tmp, path).map_err(|e| {
            PersistError::io(format!("renaming {} to {}", tmp.display(), path.display()), e)
        })
    }

    /// Reads and fully validates an image from `path`.
    pub fn open(path: &Path) -> Result<SessionImage, PersistError> {
        let bytes = fs::read(path)
            .map_err(|e| PersistError::io(format!("reading image {}", path.display()), e))?;
        SessionImage::from_bytes(&bytes).map_err(|e| match e {
            PersistError::Corrupt { context } => {
                PersistError::corrupt(format!("{}: {context}", path.display()))
            }
            io => io,
        })
    }
}

/// Extension trait giving [`DynamicMatcher`] its hibernation verbs without
/// `mwm-dynamic` depending on this crate. Import the trait and write
/// `dm.hibernate()` / `DynamicMatcher::revive(&image)`.
pub trait Hibernate: Sized {
    /// Serializes the session into a portable image. Fails only if the
    /// session's collections overflow the codec's `u32` count prefixes.
    fn hibernate(&self) -> Result<SessionImage, PersistError>;
    /// Restores a session from an image, bit-identical to the hibernated one.
    fn revive(image: &SessionImage) -> Result<Self, PersistError>;
}

impl Hibernate for DynamicMatcher {
    fn hibernate(&self) -> Result<SessionImage, PersistError> {
        SessionImage::from_session(self)
    }

    fn revive(image: &SessionImage) -> Result<Self, PersistError> {
        image.restore()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwm_core::ResourceBudget;
    use mwm_dynamic::DynamicConfig;
    use mwm_graph::{Graph, GraphUpdate};

    fn session() -> DynamicMatcher {
        let mut g = Graph::new(8);
        g.add_edge(0, 1, 3.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(2, 3, 4.0);
        g.add_edge(4, 5, 1.5);
        let mut dm = DynamicMatcher::new(&g, DynamicConfig::default()).unwrap();
        dm.apply_epoch(&[], &ResourceBudget::unlimited()).unwrap();
        dm.apply_epoch(
            &[GraphUpdate::InsertEdge { u: 5, v: 6, w: 7.0 }, GraphUpdate::DeleteEdge { id: 1 }],
            &ResourceBudget::unlimited(),
        )
        .unwrap();
        dm
    }

    #[test]
    fn hibernate_revive_is_bit_identical() {
        let dm = session();
        let image = dm.hibernate().unwrap();
        let back = DynamicMatcher::revive(&image).unwrap();
        assert_eq!(back.weight().to_bits(), dm.weight().to_bits());
        assert_eq!(back.epochs(), dm.epochs());
        assert_eq!(back.overlay().version(), dm.overlay().version());
        assert_eq!(back.duals().map(|d| d.fingerprint()), dm.duals().map(|d| d.fingerprint()));
        // The image of the revived session is byte-identical: write→open→write
        // is a fixed point at the session level too.
        assert_eq!(back.hibernate().unwrap(), image);
    }

    #[test]
    fn turnstile_sessions_hibernate_their_bank_bit_identically() {
        let mut g = Graph::new(8);
        g.add_edge(0, 1, 3.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(2, 3, 4.0);
        g.add_edge(4, 5, 1.5);
        let cfg = DynamicConfig {
            ingest: mwm_dynamic::IngestMode::Turnstile,
            turnstile_max_weight: 16.0,
            ..DynamicConfig::default()
        };
        let mut dm = DynamicMatcher::new(&g, cfg).unwrap();
        dm.apply_epoch(&[], &ResourceBudget::unlimited()).unwrap();
        dm.apply_epoch(
            &[GraphUpdate::InsertEdge { u: 5, v: 6, w: 7.0 }, GraphUpdate::DeleteEdge { id: 1 }],
            &ResourceBudget::unlimited(),
        )
        .unwrap();
        assert!(dm.sketch_bank().is_some(), "turnstile session must carry a bank");

        let image = dm.hibernate().unwrap();
        let back = DynamicMatcher::revive(&image).unwrap();
        assert_eq!(
            back.sketch_bank().map(|b| b.to_state()),
            dm.sketch_bank().map(|b| b.to_state()),
            "revived bank must be bit-identical"
        );
        // Revive → hibernate is a fixed point, bank bytes included.
        assert_eq!(back.hibernate().unwrap(), image);
    }

    #[test]
    fn files_round_trip_and_validate() {
        let dir = std::env::temp_dir().join(format!("mwm-image-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.img");
        let image = session().hibernate().unwrap();
        image.write(&path).unwrap();
        assert_eq!(SessionImage::open(&path).unwrap(), image);

        // Truncation → Corrupt (declared length no longer matches).
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        assert!(matches!(SessionImage::open(&path), Err(PersistError::Corrupt { .. })));

        // A flipped payload bit → checksum mismatch.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        fs::write(&path, &flipped).unwrap();
        let err = SessionImage::open(&path).unwrap_err();
        assert!(format!("{err}").contains("checksum"), "got: {err}");

        // Bad magic → Corrupt.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        fs::write(&path, &bad).unwrap();
        assert!(format!("{}", SessionImage::open(&path).unwrap_err()).contains("magic"));

        // Unknown version → Corrupt.
        let mut vers = bytes;
        vers[8] = 99;
        fs::write(&path, &vers).unwrap();
        assert!(format!("{}", SessionImage::open(&path).unwrap_err()).contains("version"));

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_io_not_corrupt() {
        let err = SessionImage::open(Path::new("/nonexistent/mwm/image.img")).unwrap_err();
        assert!(matches!(err, PersistError::Io { .. }));
    }
}
