//! Fixed-point weight lattice over the `B/W*` rescale.
//!
//! The batch pass pipeline stores edge weights as IEEE-754 **bit patterns**
//! (`u64` columns): the round-trip through [`f64::to_bits`] is exact, and for
//! the positive finite weights the graph layer admits, unsigned comparison of
//! the bit patterns agrees with numeric comparison. That turns the paper's
//! weight classes `ŵ_k = (1+ε)^k` (after rescaling by `B/W*`, Definitions
//! 2–3) into a *lattice of integer keys*: classifying an edge is one multiply
//! plus a `partition_point` over a small boundary table, and the class
//! weights the dual-primal oracle divides by are precomputed once per lattice
//! instead of one `powi` per edge.
//!
//! [`FixedLattice`] copies its boundary table from
//! [`WeightLevels::boundary_bits`], so its lookups agree with the level
//! construction bit for bit — the invariant the determinism suite holds the
//! batch kernels to.

use mwm_graph::WeightLevels;

/// The lattice key of an original-scale weight: its IEEE-754 bit pattern.
/// Exact (the inverse is [`key_weight`]) and order-preserving for the
/// positive finite weights edges carry.
#[inline]
pub fn weight_key(w: f64) -> u64 {
    w.to_bits()
}

/// Inverse of [`weight_key`].
#[inline]
pub fn key_weight(key: u64) -> f64 {
    f64::from_bits(key)
}

/// A weight-class lattice derived from a [`WeightLevels`] decomposition,
/// holding everything the slice kernels need per class: the scaled-space
/// boundary keys and the precomputed class weights `ŵ_k = (1+ε)^k`.
#[derive(Clone, Debug)]
pub struct FixedLattice {
    scale: f64,
    /// Scaled-space class boundaries as `f64` bit patterns, shared with the
    /// source [`WeightLevels`].
    bound_keys: Vec<u64>,
    /// `class_weights[k] = (1+ε)^k`, identical bits to
    /// [`WeightLevels::level_weight`].
    class_weights: Vec<f64>,
}

impl FixedLattice {
    /// Builds the lattice for a decomposition: copies the boundary-bit table
    /// and precomputes every class weight.
    pub fn from_levels(levels: &WeightLevels) -> Self {
        let bound_keys = levels.boundary_bits().to_vec();
        let class_weights = (0..bound_keys.len()).map(|k| levels.level_weight(k)).collect();
        FixedLattice { scale: levels.scale(), bound_keys, class_weights }
    }

    /// The rescale factor `B / W*` the lattice classifies under.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Number of classes the boundary table describes.
    pub fn num_classes(&self) -> usize {
        self.bound_keys.len()
    }

    /// The class of an original-scale weight key, or `None` when the weight
    /// rescales below 1 (a dropped edge). Bit-identical to
    /// [`WeightLevels::level_of_bits`] for every weight of the construction
    /// graph (whose scaled weights all fall inside the boundary table).
    #[inline]
    pub fn class_of_key(&self, key: u64) -> Option<usize> {
        let scaled = key_weight(key) * self.scale;
        let sb = scaled.to_bits();
        if self.bound_keys.first().is_none_or(|&b0| sb < b0) {
            return None;
        }
        Some(self.bound_keys.partition_point(|&b| b <= sb) - 1)
    }

    /// The discretized class weight `ŵ_k = (1+ε)^k` (scaled space).
    #[inline]
    pub fn class_weight(&self, k: usize) -> f64 {
        self.class_weights[k]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwm_graph::Graph;

    fn sample_graph() -> Graph {
        let mut g = Graph::new(8);
        for (i, w) in [0.5, 1.0, 1.7, 2.0, 4.0, 8.5, 16.0].iter().enumerate() {
            g.add_edge(i as u32, i as u32 + 1, *w);
        }
        g
    }

    #[test]
    fn key_round_trip_is_exact_and_ordered() {
        let ws = [1.0, 1.0000000001, 2.5, 1e-300, 9.9, 1e18];
        for &w in &ws {
            assert_eq!(key_weight(weight_key(w)).to_bits(), w.to_bits());
        }
        let mut keys: Vec<u64> = ws.iter().map(|&w| weight_key(w)).collect();
        keys.sort_unstable();
        let back: Vec<f64> = keys.iter().map(|&k| key_weight(k)).collect();
        assert!(back.windows(2).all(|p| p[0] <= p[1]), "key order must match weight order");
    }

    #[test]
    fn lattice_classification_matches_weight_levels_exactly() {
        for eps in [0.1, 0.25, 0.5] {
            let g = sample_graph();
            let levels = WeightLevels::new(&g, eps);
            let lattice = FixedLattice::from_levels(&levels);
            assert_eq!(lattice.num_classes(), levels.boundary_bits().len());
            for (_, e) in g.edge_iter() {
                let by_lattice = lattice.class_of_key(weight_key(e.w));
                assert_eq!(by_lattice, levels.level_of_weight(e.w), "eps={eps} w={}", e.w);
                if let Some(k) = by_lattice {
                    assert_eq!(
                        lattice.class_weight(k).to_bits(),
                        levels.level_weight(k).to_bits(),
                        "class weights must be the very same bits"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_lattice_drops_everything() {
        let lattice = FixedLattice::from_levels(&WeightLevels::new(&Graph::new(3), 0.2));
        assert_eq!(lattice.num_classes(), 0);
        assert_eq!(lattice.class_of_key(weight_key(5.0)), None);
    }
}
