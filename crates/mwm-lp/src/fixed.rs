//! Fixed-point weight lattice over the `B/W*` rescale.
//!
//! The batch pass pipeline stores edge weights as IEEE-754 **bit patterns**
//! (`u64` columns): the round-trip through [`f64::to_bits`] is exact, and for
//! the positive finite weights the graph layer admits, unsigned comparison of
//! the bit patterns agrees with numeric comparison. That turns the paper's
//! weight classes `ŵ_k = (1+ε)^k` (after rescaling by `B/W*`, Definitions
//! 2–3) into a *lattice of integer keys*: classifying an edge is one multiply
//! plus a `partition_point` over a small boundary table, and the class
//! weights the dual-primal oracle divides by are precomputed once per lattice
//! instead of one `powi` per edge.
//!
//! [`FixedLattice`] copies its boundary table from
//! [`WeightLevels::boundary_bits`], so its lookups agree with the level
//! construction bit for bit — the invariant the determinism suite holds the
//! batch kernels to.

use mwm_graph::WeightLevels;

/// The lattice key of an original-scale weight: its IEEE-754 bit pattern.
/// Exact (the inverse is [`key_weight`]) and order-preserving for the
/// positive finite weights edges carry.
#[inline]
pub fn weight_key(w: f64) -> u64 {
    w.to_bits()
}

/// Inverse of [`weight_key`].
#[inline]
pub fn key_weight(key: u64) -> f64 {
    f64::from_bits(key)
}

/// A weight-class lattice derived from a [`WeightLevels`] decomposition,
/// holding everything the slice kernels need per class: the scaled-space
/// boundary keys and the precomputed class weights `ŵ_k = (1+ε)^k`.
#[derive(Clone, Debug)]
pub struct FixedLattice {
    scale: f64,
    /// Scaled-space class boundaries as `f64` bit patterns, shared with the
    /// source [`WeightLevels`].
    bound_keys: Vec<u64>,
    /// `class_weights[k] = (1+ε)^k`, identical bits to
    /// [`WeightLevels::level_weight`].
    class_weights: Vec<f64>,
}

impl FixedLattice {
    /// Builds the lattice for a decomposition: copies the boundary-bit table
    /// and precomputes every class weight.
    pub fn from_levels(levels: &WeightLevels) -> Self {
        let bound_keys = levels.boundary_bits().to_vec();
        let class_weights = (0..bound_keys.len()).map(|k| levels.level_weight(k)).collect();
        FixedLattice { scale: levels.scale(), bound_keys, class_weights }
    }

    /// Builds a lattice directly from parameters, with no construction graph:
    /// the boundary loop replicates [`WeightLevels::new`] bit for bit, so a
    /// turnstile session can pin its weight classes up front (from a weight
    /// floor and ceiling it enforces on the stream) and classify updates
    /// bit-identically to any solver lattice sharing `eps` and `scale`.
    ///
    /// `scale` is the rescale factor applied before classification and
    /// `max_scaled` the largest scaled weight the table must cover; the
    /// boundaries are `(1+eps)^k` for `k = 0, 1, …` until one strictly
    /// exceeds `max_scaled`.
    pub fn from_params(eps: f64, scale: f64, max_scaled: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
        assert!(scale > 0.0 && scale.is_finite(), "scale must be positive and finite");
        assert!(max_scaled.is_finite(), "max_scaled must be finite");
        let mut bound_keys = Vec::new();
        let mut k = 0i32;
        loop {
            let b = (1.0 + eps).powi(k);
            bound_keys.push(b.to_bits());
            if b > max_scaled {
                break;
            }
            k += 1;
        }
        let class_weights = (0..bound_keys.len()).map(|i| (1.0 + eps).powi(i as i32)).collect();
        FixedLattice { scale, bound_keys, class_weights }
    }

    /// The rescale factor `B / W*` the lattice classifies under.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Number of classes the boundary table describes.
    pub fn num_classes(&self) -> usize {
        self.bound_keys.len()
    }

    /// The class of an original-scale weight key, or `None` when the weight
    /// rescales below 1 (a dropped edge). Bit-identical to
    /// [`WeightLevels::level_of_bits`] for every weight of the construction
    /// graph (whose scaled weights all fall inside the boundary table).
    #[inline]
    pub fn class_of_key(&self, key: u64) -> Option<usize> {
        let scaled = key_weight(key) * self.scale;
        let sb = scaled.to_bits();
        if self.bound_keys.first().is_none_or(|&b0| sb < b0) {
            return None;
        }
        Some(self.bound_keys.partition_point(|&b| b <= sb) - 1)
    }

    /// The discretized class weight `ŵ_k = (1+ε)^k` (scaled space).
    #[inline]
    pub fn class_weight(&self, k: usize) -> f64 {
        self.class_weights[k]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwm_graph::Graph;

    fn sample_graph() -> Graph {
        let mut g = Graph::new(8);
        for (i, w) in [0.5, 1.0, 1.7, 2.0, 4.0, 8.5, 16.0].iter().enumerate() {
            g.add_edge(i as u32, i as u32 + 1, *w);
        }
        g
    }

    #[test]
    fn key_round_trip_is_exact_and_ordered() {
        let ws = [1.0, 1.0000000001, 2.5, 1e-300, 9.9, 1e18];
        for &w in &ws {
            assert_eq!(key_weight(weight_key(w)).to_bits(), w.to_bits());
        }
        let mut keys: Vec<u64> = ws.iter().map(|&w| weight_key(w)).collect();
        keys.sort_unstable();
        let back: Vec<f64> = keys.iter().map(|&k| key_weight(k)).collect();
        assert!(back.windows(2).all(|p| p[0] <= p[1]), "key order must match weight order");
    }

    #[test]
    fn lattice_classification_matches_weight_levels_exactly() {
        for eps in [0.1, 0.25, 0.5] {
            let g = sample_graph();
            let levels = WeightLevels::new(&g, eps);
            let lattice = FixedLattice::from_levels(&levels);
            assert_eq!(lattice.num_classes(), levels.boundary_bits().len());
            for (_, e) in g.edge_iter() {
                let by_lattice = lattice.class_of_key(weight_key(e.w));
                assert_eq!(by_lattice, levels.level_of_weight(e.w), "eps={eps} w={}", e.w);
                if let Some(k) = by_lattice {
                    assert_eq!(
                        lattice.class_weight(k).to_bits(),
                        levels.level_weight(k).to_bits(),
                        "class weights must be the very same bits"
                    );
                }
            }
        }
    }

    #[test]
    fn from_params_matches_from_levels_bit_for_bit() {
        for eps in [0.1, 0.25, 0.5] {
            let g = sample_graph();
            let levels = WeightLevels::new(&g, eps);
            let from_levels = FixedLattice::from_levels(&levels);
            // Reconstruct with the same parameters the level construction
            // derived: scale = B/W*, table covering up to W* * scale.
            let w_star = g.edges().iter().map(|e| e.w).fold(0.0f64, f64::max);
            let from_params =
                FixedLattice::from_params(eps, levels.scale(), w_star * levels.scale());
            assert_eq!(from_params.num_classes(), from_levels.num_classes(), "eps={eps}");
            assert_eq!(from_params.scale().to_bits(), from_levels.scale().to_bits());
            for k in 0..from_levels.num_classes() {
                assert_eq!(
                    from_params.class_weight(k).to_bits(),
                    from_levels.class_weight(k).to_bits()
                );
            }
            for (_, e) in g.edge_iter() {
                assert_eq!(
                    from_params.class_of_key(weight_key(e.w)),
                    from_levels.class_of_key(weight_key(e.w)),
                    "eps={eps} w={}",
                    e.w
                );
            }
        }
    }

    #[test]
    fn empty_lattice_drops_everything() {
        let lattice = FixedLattice::from_levels(&WeightLevels::new(&Graph::new(3), 0.2));
        assert_eq!(lattice.num_classes(), 0);
        assert_eq!(lattice.class_of_key(weight_key(5.0)), None);
    }
}
