//! The fractional packing framework (Theorem 7, Corollary 8).
//!
//! Mirror image of the covering solver: we look for `x ∈ P_p` with
//! `A_p x ≤ d`. The algorithm maintains `x`, tracks the load ratios
//! `(A_p x)_r / d_r`, and queries an oracle for (approximate) minimizers of
//! `zᵀA_p x̃` under the exponential multipliers
//! `z_r = exp(α'·(A_p x)_r / d_r)/d_r`. The paper uses this machinery inside
//! Theorem 4 (system `Modified-Sparse` / `Inner`) with `δ = ε/16`, which is
//! why the default tolerance accepts `λ_p ≤ 1 + 6δ`.

/// A candidate returned by a packing oracle.
#[derive(Clone, Debug)]
pub struct PackingCandidate<T> {
    /// Nonzero entries of `A_p x̃` as `(constraint index, value)` pairs.
    pub load: Vec<(usize, f64)>,
    /// Caller-defined payload describing `x̃`.
    pub payload: T,
}

/// A problem instance consumed by [`solve_packing`].
pub trait PackingInstance {
    /// Payload type attached to oracle candidates.
    type Payload;

    /// Number of packing constraints `M'`.
    fn num_constraints(&self) -> usize;

    /// Right-hand side `d_r > 0`.
    fn rhs(&self, r: usize) -> f64;

    /// Width bound `ρ' ≥ max_{x∈P_p} max_r (A_p x)_r / d_r`.
    fn width(&self) -> f64;

    /// The relaxed oracle of Corollary 8: return a candidate with
    /// `zᵀA_p x̃ ≤ (1+δ/2)·zᵀd`, or `None` if even the best `x̃` exceeds it
    /// (the packing problem is then infeasible for the caller's purposes).
    fn oracle(&mut self, z: &[f64], delta: f64) -> Option<PackingCandidate<Self::Payload>>;
}

/// Parameters of the packing solver.
#[derive(Clone, Copy, Debug)]
pub struct PackingParams {
    /// Target accuracy δ: the solver stops when `λ_p ≤ 1 + 6δ`.
    pub delta: f64,
    /// Hard cap on oracle invocations.
    pub max_iterations: usize,
}

impl Default for PackingParams {
    fn default() -> Self {
        PackingParams { delta: 0.1, max_iterations: 100_000 }
    }
}

/// Why the packing solver stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PackingOutcome {
    /// `λ_p ≤ 1 + 6δ`: the maintained point satisfies the packing constraints
    /// up to the promised slack.
    Feasible,
    /// The oracle refused to produce a candidate.
    OracleFailed,
    /// Iteration cap reached.
    IterationLimit,
}

/// The result of a packing run.
#[derive(Clone, Debug)]
pub struct PackingSolution<T> {
    /// Termination reason.
    pub outcome: PackingOutcome,
    /// Final `λ_p = max_r (A_p x)_r / d_r`.
    pub lambda: f64,
    /// Final load ratios per constraint.
    pub load_ratio: Vec<f64>,
    /// The convex combination defining `x` (same convention as the covering solver).
    pub steps: Vec<(f64, T)>,
    /// Number of successful oracle invocations.
    pub iterations: usize,
}

/// Runs the fractional packing framework starting from a point with load
/// `initial_load = A_p x₀` (Theorem 7 requires `A_p x₀ ≤ δ₀·d` for some finite
/// `δ₀`, e.g. `x₀ = 0`).
pub fn solve_packing<I: PackingInstance>(
    instance: &mut I,
    initial_load: Vec<f64>,
    initial_payload: I::Payload,
    params: &PackingParams,
) -> PackingSolution<I::Payload>
where
    I::Payload: Clone,
{
    let m = instance.num_constraints();
    assert_eq!(initial_load.len(), m);
    let delta = params.delta;
    assert!(delta > 0.0 && delta < 0.5);
    let rho = instance.width().max(1.0);

    let mut ratio: Vec<f64> = (0..m)
        .map(|r| {
            let d = instance.rhs(r);
            assert!(d > 0.0, "packing RHS must be positive");
            initial_load[r] / d
        })
        .collect();
    let mut steps: Vec<(f64, I::Payload)> = vec![(1.0, initial_payload)];
    let mut iterations = 0usize;

    let lambda_of = |ratio: &[f64]| ratio.iter().copied().fold(0.0f64, f64::max);
    let mut lambda = lambda_of(&ratio);

    loop {
        if lambda <= 1.0 + 6.0 * delta {
            return PackingSolution {
                outcome: PackingOutcome::Feasible,
                lambda,
                load_ratio: ratio,
                steps,
                iterations,
            };
        }
        if iterations >= params.max_iterations {
            return PackingSolution {
                outcome: PackingOutcome::IterationLimit,
                lambda,
                load_ratio: ratio,
                steps,
                iterations,
            };
        }
        let lambda_t = lambda.max(1e-9);
        let alpha = (2.0 / (lambda_t * delta)) * ((m.max(2) as f64) / delta).ln();
        // Multipliers normalised so the largest exponent is 0.
        let z: Vec<f64> = (0..m)
            .map(|r| ((alpha * (ratio[r] - lambda)).min(700.0)).exp() / instance.rhs(r))
            .collect();
        match instance.oracle(&z, delta) {
            None => {
                return PackingSolution {
                    outcome: PackingOutcome::OracleFailed,
                    lambda,
                    load_ratio: ratio,
                    steps,
                    iterations,
                };
            }
            Some(cand) => {
                iterations += 1;
                let sigma = (delta / (4.0 * alpha * rho)).min(1.0);
                for r in ratio.iter_mut() {
                    *r *= 1.0 - sigma;
                }
                for &(r, v) in &cand.load {
                    ratio[r] += sigma * v / instance.rhs(r);
                }
                for (w, _) in steps.iter_mut() {
                    *w *= 1.0 - sigma;
                }
                steps.push((sigma, cand.payload));
                lambda = lambda_of(&ratio);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::{BoxBudgetPolytope, ExplicitPacking};

    #[test]
    fn zero_start_is_immediately_feasible() {
        let rows = vec![vec![(0, 1.0)], vec![(1, 1.0)]];
        let mut inst = ExplicitPacking::new(
            rows,
            vec![1.0, 1.0],
            BoxBudgetPolytope { upper: vec![1.0, 1.0], cost: vec![1.0, 1.0], budget: 2.0 },
            vec![0.0, 0.0],
        );
        let sol = solve_packing(&mut inst, vec![0.0, 0.0], vec![], &PackingParams::default());
        assert_eq!(sol.outcome, PackingOutcome::Feasible);
        assert_eq!(sol.iterations, 0);
    }

    #[test]
    fn overloaded_start_is_rebalanced() {
        // One constraint over two variables; start from a point overloading it by 3x.
        let rows = vec![vec![(0, 1.0), (1, 1.0)]];
        let mut inst = ExplicitPacking::new(
            rows,
            vec![2.0],
            BoxBudgetPolytope { upper: vec![1.0, 1.0], cost: vec![1.0, 1.0], budget: 2.0 },
            // Rewards low: the oracle happily returns sparse answers, diluting the load.
            vec![0.1, 0.1],
        );
        let sol = solve_packing(
            &mut inst,
            vec![6.0],
            vec![(0, 3.0), (1, 3.0)],
            &PackingParams { delta: 0.1, max_iterations: 50_000 },
        );
        assert_eq!(sol.outcome, PackingOutcome::Feasible);
        assert!(sol.lambda <= 1.0 + 6.0 * 0.1 + 1e-9);
        assert!(sol.iterations > 0);
        let total: f64 = sol.steps.iter().map(|(w, _)| w).sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn load_ratio_tracks_constraints() {
        let rows = vec![vec![(0, 2.0)], vec![(0, 1.0)]];
        let mut inst = ExplicitPacking::new(
            rows,
            vec![4.0, 4.0],
            BoxBudgetPolytope { upper: vec![1.0], cost: vec![1.0], budget: 1.0 },
            vec![0.0],
        );
        let sol =
            solve_packing(&mut inst, vec![2.0, 1.0], vec![(0, 1.0)], &PackingParams::default());
        assert_eq!(sol.outcome, PackingOutcome::Feasible);
        assert!((sol.load_ratio[0] - 0.5).abs() < 1e-9);
        assert!((sol.load_ratio[1] - 0.25).abs() < 1e-9);
    }
}
