//! Width parameters of explicit instances.
//!
//! The *width* `ρ = max_{x∈P} max_ℓ (Ax)_ℓ / c_ℓ` governs both the step size
//! and the iteration count `O(ρ·ε⁻²·log M)` of the multiplicative-weights
//! frameworks (Theorems 5 and 7). Section 1 of the paper argues that the
//! standard matching dual LP2 has width `Ω(n)` while the penalty relaxations
//! LP4/LP5 have *constant* width — experiment E7 measures exactly this; the
//! helpers here compute widths of the explicit synthetic instances.

use crate::explicit::{ExplicitCovering, ExplicitPacking};

/// Width of an explicit covering instance over its box-with-budget polytope:
/// the row-wise maximum of `(Ax)_ℓ/c_ℓ` where each variable is pushed to the
/// largest value the box and budget allow *individually* and then summed — an
/// upper bound on the true width, which is what the solvers need.
pub fn covering_width(inst: &ExplicitCovering) -> f64 {
    let mut width: f64 = 0.0;
    for (l, row) in inst.rows.iter().enumerate() {
        let mut numer = 0.0;
        for &(j, a) in row {
            numer += a * inst.polytope.max_single(j);
        }
        width = width.max(numer / inst.c[l]);
    }
    width.max(1.0)
}

/// Width of an explicit packing instance (same upper-bound construction).
pub fn packing_width(inst: &ExplicitPacking) -> f64 {
    let mut width: f64 = 0.0;
    for (r, row) in inst.rows.iter().enumerate() {
        let mut numer = 0.0;
        for &(j, a) in row {
            numer += a * inst.polytope.max_single(j);
        }
        width = width.max(numer / inst.d[r]);
    }
    width.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::BoxBudgetPolytope;

    #[test]
    fn width_scales_with_box_upper_bounds() {
        let make = |upper: f64| {
            ExplicitCovering::new(
                vec![vec![(0, 1.0), (1, 1.0)]],
                vec![1.0],
                BoxBudgetPolytope { upper: vec![upper, upper], cost: vec![1.0, 1.0], budget: 1e9 },
            )
        };
        let narrow = covering_width(&make(1.0));
        let wide = covering_width(&make(10.0));
        assert!((narrow - 2.0).abs() < 1e-12);
        assert!((wide - 20.0).abs() < 1e-12);
    }

    #[test]
    fn budget_caps_the_width() {
        let inst = ExplicitCovering::new(
            vec![vec![(0, 1.0)]],
            vec![1.0],
            BoxBudgetPolytope { upper: vec![100.0], cost: vec![1.0], budget: 5.0 },
        );
        assert!((covering_width(&inst) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn packing_width_positive() {
        let inst = ExplicitPacking::new(
            vec![vec![(0, 2.0)]],
            vec![1.0],
            BoxBudgetPolytope { upper: vec![3.0], cost: vec![1.0], budget: 10.0 },
            vec![1.0],
        );
        assert!((packing_width(&inst) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn width_is_at_least_one() {
        let inst = ExplicitCovering::new(
            vec![vec![(0, 0.001)]],
            vec![1.0],
            BoxBudgetPolytope { upper: vec![1.0], cost: vec![1.0], budget: 1.0 },
        );
        assert!(covering_width(&inst) >= 1.0);
    }
}
