//! Explicit sparse covering/packing instances over box-with-budget polytopes.
//!
//! These instances back the solver unit tests and experiment E10 (substrate
//! sanity: iteration counts versus width). The polytope is
//! `P = {x : 0 ≤ x_j ≤ upper_j, Σ_j cost_j·x_j ≤ budget}`, for which exact
//! linear optimization (the oracle problem `max uᵀAx` / `min zᵀA_p x`) is a
//! fractional-knapsack greedy.

use crate::covering::{CoveringInstance, OracleCandidate};
use crate::packing::PackingInstance;

/// `P = {x : 0 ≤ x ≤ upper, costᵀx ≤ budget}`.
#[derive(Clone, Debug)]
pub struct BoxBudgetPolytope {
    /// Upper bound per variable.
    pub upper: Vec<f64>,
    /// Budget coefficient per variable (must be positive).
    pub cost: Vec<f64>,
    /// Total budget.
    pub budget: f64,
}

impl BoxBudgetPolytope {
    /// Maximizes `scoreᵀx` over the polytope (fractional knapsack greedy).
    /// Returns the chosen `x` as sparse `(index, value)` pairs.
    pub fn maximize(&self, score: &[f64]) -> Vec<(usize, f64)> {
        let n = self.upper.len();
        assert_eq!(score.len(), n);
        let mut order: Vec<usize> = (0..n).filter(|&j| score[j] > 0.0).collect();
        order.sort_by(|&a, &b| {
            let ra = score[a] / self.cost[a];
            let rb = score[b] / self.cost[b];
            rb.total_cmp(&ra)
        });
        let mut remaining = self.budget;
        let mut x = Vec::new();
        for j in order {
            if remaining <= 0.0 {
                break;
            }
            let amount = self.upper[j].min(remaining / self.cost[j]);
            if amount > 0.0 {
                x.push((j, amount));
                remaining -= amount * self.cost[j];
            }
        }
        x
    }

    /// Maximum feasible value of `x_j` alone (used for width computations).
    pub fn max_single(&self, j: usize) -> f64 {
        self.upper[j].min(self.budget / self.cost[j])
    }
}

/// Explicit covering instance: `∃? x ∈ P : Ax ≥ c`.
#[derive(Clone, Debug)]
pub struct ExplicitCovering {
    /// Rows of `A`: `rows[ℓ] = [(j, A_{ℓj}), …]` with non-negative entries.
    pub rows: Vec<Vec<(usize, f64)>>,
    /// Right-hand sides `c_ℓ > 0`.
    pub c: Vec<f64>,
    /// The polytope `P`.
    pub polytope: BoxBudgetPolytope,
    cached_width: f64,
}

impl ExplicitCovering {
    /// Builds an instance (and pre-computes its width).
    pub fn new(rows: Vec<Vec<(usize, f64)>>, c: Vec<f64>, polytope: BoxBudgetPolytope) -> Self {
        assert_eq!(rows.len(), c.len());
        let mut inst = ExplicitCovering { rows, c, polytope, cached_width: 0.0 };
        inst.cached_width = crate::width::covering_width(&inst);
        inst
    }

    /// Number of variables (inferred from the polytope).
    pub fn num_variables(&self) -> usize {
        self.polytope.upper.len()
    }

    /// Evaluates `A x` for a sparse `x`.
    pub fn coverage_of(&self, x: &[(usize, f64)]) -> Vec<f64> {
        let mut dense = vec![0.0; self.num_variables()];
        for &(j, v) in x {
            dense[j] += v;
        }
        self.rows.iter().map(|row| row.iter().map(|&(j, a)| a * dense[j]).sum()).collect()
    }
}

impl CoveringInstance for ExplicitCovering {
    /// Payload: the sparse `x̃` chosen by the oracle.
    type Payload = Vec<(usize, f64)>;

    fn num_constraints(&self) -> usize {
        self.c.len()
    }

    fn rhs(&self, l: usize) -> f64 {
        self.c[l]
    }

    fn width(&self) -> f64 {
        self.cached_width
    }

    fn oracle(&mut self, u: &[f64], eps: f64) -> Option<OracleCandidate<Self::Payload>> {
        // score_j = Σ_ℓ u_ℓ A_{ℓj}
        let n = self.num_variables();
        let mut score = vec![0.0f64; n];
        for (l, row) in self.rows.iter().enumerate() {
            for &(j, a) in row {
                score[j] += u[l] * a;
            }
        }
        let x = self.polytope.maximize(&score);
        // Check the Corollary 6 requirement: uᵀAx̃ ≥ (1-ε/2)·uᵀc.
        let ax = self.coverage_of(&x);
        let lhs: f64 = ax.iter().zip(u).map(|(a, w)| a * w).sum();
        let rhs: f64 = self.c.iter().zip(u).map(|(c, w)| c * w).sum();
        if lhs + 1e-15 < (1.0 - eps / 2.0) * rhs {
            return None;
        }
        let coverage: Vec<(usize, f64)> =
            ax.into_iter().enumerate().filter(|&(_, v)| v > 0.0).collect();
        Some(OracleCandidate { coverage, payload: x })
    }
}

/// Explicit packing instance: `∃? x ∈ P : A_p x ≤ d` (with the same polytope
/// structure; the oracle minimizes `zᵀA_p x`, which over a box-with-budget
/// polytope is simply `x = 0` unless the caller adds a lower-bound structure —
/// we therefore include per-variable *required lower bounds* to make the
/// instances non-trivial).
#[derive(Clone, Debug)]
pub struct ExplicitPacking {
    /// Rows of `A_p`.
    pub rows: Vec<Vec<(usize, f64)>>,
    /// Right-hand sides `d_r > 0`.
    pub d: Vec<f64>,
    /// The polytope `P` (upper bounds / budget).
    pub polytope: BoxBudgetPolytope,
    /// Additional reward vector: the oracle maximizes `rewardᵀx - zᵀA_p x`
    /// truncated at the box; this mimics the Lagrangian shape of `LagInner`.
    pub reward: Vec<f64>,
    cached_width: f64,
}

impl ExplicitPacking {
    /// Builds an instance (and pre-computes its width).
    pub fn new(
        rows: Vec<Vec<(usize, f64)>>,
        d: Vec<f64>,
        polytope: BoxBudgetPolytope,
        reward: Vec<f64>,
    ) -> Self {
        assert_eq!(rows.len(), d.len());
        let mut inst = ExplicitPacking { rows, d, polytope, reward, cached_width: 0.0 };
        inst.cached_width = crate::width::packing_width(&inst);
        inst
    }

    /// Number of variables.
    pub fn num_variables(&self) -> usize {
        self.polytope.upper.len()
    }

    /// Evaluates `A_p x` for a sparse `x`.
    pub fn load_of(&self, x: &[(usize, f64)]) -> Vec<f64> {
        let mut dense = vec![0.0; self.num_variables()];
        for &(j, v) in x {
            dense[j] += v;
        }
        self.rows.iter().map(|row| row.iter().map(|&(j, a)| a * dense[j]).sum()).collect()
    }
}

impl PackingInstance for ExplicitPacking {
    type Payload = Vec<(usize, f64)>;

    fn num_constraints(&self) -> usize {
        self.d.len()
    }

    fn rhs(&self, r: usize) -> f64 {
        self.d[r]
    }

    fn width(&self) -> f64 {
        self.cached_width
    }

    fn oracle(
        &mut self,
        z: &[f64],
        _delta: f64,
    ) -> Option<crate::packing::PackingCandidate<Self::Payload>> {
        // Minimize zᵀA_p x - rewardᵀx over the box: include x_j at its upper
        // bound whenever its net score is negative (i.e. reward beats penalty).
        let n = self.num_variables();
        let mut penalty = vec![0.0f64; n];
        for (r, row) in self.rows.iter().enumerate() {
            for &(j, a) in row {
                penalty[j] += z[r] * a;
            }
        }
        let mut x = Vec::new();
        let mut remaining = self.polytope.budget;
        for (j, &pen) in penalty.iter().enumerate().take(n) {
            if self.reward[j] > pen && remaining > 0.0 {
                let amount = self.polytope.upper[j].min(remaining / self.polytope.cost[j]);
                if amount > 0.0 {
                    x.push((j, amount));
                    remaining -= amount * self.polytope.cost[j];
                }
            }
        }
        let load = self.load_of(&x);
        let load_sparse: Vec<(usize, f64)> =
            load.into_iter().enumerate().filter(|&(_, v)| v > 0.0).collect();
        Some(crate::packing::PackingCandidate { load: load_sparse, payload: x })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knapsack_oracle_prefers_best_ratio() {
        let p = BoxBudgetPolytope {
            upper: vec![1.0, 1.0, 1.0],
            cost: vec![1.0, 2.0, 1.0],
            budget: 2.0,
        };
        // Scores: variable 2 has the best ratio, then variable 0.
        let x = p.maximize(&[1.0, 1.5, 2.0]);
        let dense: std::collections::HashMap<usize, f64> = x.into_iter().collect();
        assert_eq!(dense.get(&2), Some(&1.0));
        assert_eq!(dense.get(&0), Some(&1.0));
        assert!(!dense.contains_key(&1));
    }

    #[test]
    fn knapsack_respects_budget_fractionally() {
        let p = BoxBudgetPolytope { upper: vec![5.0, 5.0], cost: vec![1.0, 1.0], budget: 3.0 };
        let x = p.maximize(&[2.0, 1.0]);
        let total: f64 = x.iter().map(|&(_, v)| v).sum();
        assert!((total - 3.0).abs() < 1e-12);
        // Best-ratio variable saturates first.
        assert_eq!(x[0], (0, 3.0));
    }

    #[test]
    fn coverage_of_matches_manual_computation() {
        let rows = vec![vec![(0, 2.0), (1, 1.0)], vec![(1, 3.0)]];
        let inst = ExplicitCovering::new(
            rows,
            vec![1.0, 1.0],
            BoxBudgetPolytope { upper: vec![1.0, 1.0], cost: vec![1.0, 1.0], budget: 10.0 },
        );
        let cov = inst.coverage_of(&[(0, 0.5), (1, 1.0)]);
        assert!((cov[0] - 2.0).abs() < 1e-12);
        assert!((cov[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn explicit_width_is_positive_and_finite() {
        let rows = vec![vec![(0, 1.0)], vec![(0, 2.0), (1, 1.0)]];
        let inst = ExplicitCovering::new(
            rows,
            vec![1.0, 2.0],
            BoxBudgetPolytope { upper: vec![2.0, 3.0], cost: vec![1.0, 1.0], budget: 4.0 },
        );
        let w = CoveringInstance::width(&inst);
        assert!(w.is_finite() && w > 0.0);
    }
}
