//! Portable export/import format for dual solutions.
//!
//! The dual-primal solver's dual point (the `x_i(k)` / `z_{U,ℓ}` variables of
//! the penalty relaxation) lives in solver-internal sparse maps. A
//! [`DualSnapshot`] is the *wire format* of that point: plain sorted vectors,
//! independent of hash-map iteration order and of the solver's in-memory
//! representation, so a snapshot exported from one solve can seed the next —
//! the warm-start path of the dynamic matching subsystem.
//!
//! Level indices are not portable across graphs (the discretization
//! `ŵ_k = (1+ε)^k` depends on the maximum weight), so the snapshot records the
//! **level weight** of every entry alongside the index. Importers re-resolve
//! each entry against the *current* graph's levels by weight and drop entries
//! whose level no longer exists — import is best-effort by design: a warm
//! start only has to be a valid dual point, the solve loop restores quality.

/// One exported vertex dual: `x_v(k)` at the level whose **original-scale**
/// weight was `level_weight` when the snapshot was taken.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VertexDual {
    /// Vertex id (the graph's `u32` vertex ids).
    pub vertex: u32,
    /// Level index at export time.
    pub level: usize,
    /// The level's weight in the **original** (unrescaled) scale,
    /// `ŵ_k / scale` — the portable key importers re-resolve by.
    pub level_weight: f64,
    /// The value `x_v(k)` (rescaled weight space, see `DualSnapshot::scale`).
    pub value: f64,
}

/// One exported odd-set dual: `z_{U,ℓ}` with its members and level weight.
#[derive(Clone, Debug, PartialEq)]
pub struct OddSetDual {
    /// Level index at export time.
    pub level: usize,
    /// The level's weight in the original scale (the portable key).
    pub level_weight: f64,
    /// Member vertices, sorted ascending.
    pub members: Vec<u32>,
    /// The value `z_{U,ℓ}`.
    pub value: f64,
}

/// A deterministic, representation-independent snapshot of a dual point.
///
/// Entries are sorted (vertex duals by `(vertex, level)`, odd sets by
/// `(level, members)`), so two exports of the same dual point are equal and
/// every import walks them in the same order — a prerequisite for the
/// bit-identical-across-parallelism guarantee of the warm-start path.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DualSnapshot {
    /// Accuracy parameter ε the exporting solve ran with.
    pub eps: f64,
    /// The exporting graph's rescale factor `B / W*`. Dual values live in the
    /// rescaled weight space; an importer whose graph rescales differently
    /// multiplies every value by `new_scale / scale` to keep coverage
    /// commensurate with the new requirements.
    pub scale: f64,
    /// Number of weight levels at export time.
    pub num_levels: usize,
    /// Vertex duals, sorted by `(vertex, level)`.
    pub vertex_duals: Vec<VertexDual>,
    /// Odd-set duals, sorted by `(level, members)`.
    pub odd_sets: Vec<OddSetDual>,
}

impl DualSnapshot {
    /// An empty snapshot (no dual mass).
    pub fn empty(eps: f64, num_levels: usize) -> Self {
        DualSnapshot { eps, scale: 1.0, num_levels, vertex_duals: Vec::new(), odd_sets: Vec::new() }
    }

    /// True if the snapshot carries no dual mass.
    pub fn is_empty(&self) -> bool {
        self.vertex_duals.is_empty() && self.odd_sets.is_empty()
    }

    /// Number of stored entries (vertex duals + odd sets).
    pub fn num_entries(&self) -> usize {
        self.vertex_duals.len() + self.odd_sets.len()
    }

    /// Scales every dual value by `factor` (warm starts decay imported duals
    /// because the graph has drifted since they were exported).
    pub fn decay(&mut self, factor: f64) {
        assert!(factor.is_finite() && factor >= 0.0, "decay factor must be non-negative");
        for vd in &mut self.vertex_duals {
            vd.value *= factor;
        }
        for os in &mut self.odd_sets {
            os.value *= factor;
        }
    }

    /// Drops every entry touching a vertex for which `dead` returns true
    /// (odd sets lose the whole set if any member died — the paper's odd-set
    /// families are vertex sets, a set with a removed member is meaningless).
    pub fn retain_live_vertices(&mut self, mut dead: impl FnMut(u32) -> bool) {
        self.vertex_duals.retain(|vd| !dead(vd.vertex));
        self.odd_sets.retain(|os| !os.members.iter().any(|&v| dead(v)));
    }

    /// Restores the sort invariant after manual edits (no-op when already
    /// sorted). Exporters produced by this workspace always emit sorted
    /// snapshots; call this after building one by hand.
    pub fn normalize(&mut self) {
        self.vertex_duals.sort_by_key(|vd| (vd.vertex, vd.level));
        self.odd_sets.sort_by(|a, b| (a.level, &a.members).cmp(&(b.level, &b.members)));
    }

    /// A 64-bit fingerprint of the snapshot, folding every field through its
    /// exact bit pattern (floats via `to_bits`). Two snapshots fingerprint
    /// equal iff they are bit-identical — the persistence layer uses this as
    /// the "revived duals match the always-resident duals" witness.
    pub fn fingerprint(&self) -> u64 {
        const K: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |x: u64| {
            h = (h.rotate_left(7) ^ x).wrapping_mul(K);
        };
        fold(self.eps.to_bits());
        fold(self.scale.to_bits());
        fold(self.num_levels as u64);
        fold(self.vertex_duals.len() as u64);
        for vd in &self.vertex_duals {
            fold(u64::from(vd.vertex));
            fold(vd.level as u64);
            fold(vd.level_weight.to_bits());
            fold(vd.value.to_bits());
        }
        fold(self.odd_sets.len() as u64);
        for os in &self.odd_sets {
            fold(os.level as u64);
            fold(os.level_weight.to_bits());
            fold(os.members.len() as u64);
            for &m in &os.members {
                fold(u64::from(m));
            }
            fold(os.value.to_bits());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> DualSnapshot {
        DualSnapshot {
            eps: 0.2,
            scale: 1.0,
            num_levels: 3,
            vertex_duals: vec![
                VertexDual { vertex: 0, level: 1, level_weight: 1.2, value: 2.0 },
                VertexDual { vertex: 3, level: 0, level_weight: 1.0, value: 1.0 },
            ],
            odd_sets: vec![OddSetDual {
                level: 0,
                level_weight: 1.0,
                members: vec![1, 2, 3],
                value: 0.5,
            }],
        }
    }

    #[test]
    fn decay_scales_all_values() {
        let mut s = snapshot();
        s.decay(0.5);
        assert_eq!(s.vertex_duals[0].value, 1.0);
        assert_eq!(s.odd_sets[0].value, 0.25);
        assert_eq!(s.num_entries(), 3);
    }

    #[test]
    fn dead_vertices_take_their_odd_sets_with_them() {
        let mut s = snapshot();
        s.retain_live_vertices(|v| v == 2);
        assert_eq!(s.vertex_duals.len(), 2, "vertex 2 had no vertex dual");
        assert!(s.odd_sets.is_empty(), "the set {{1,2,3}} contained vertex 2");
        s.retain_live_vertices(|v| v == 0);
        assert_eq!(s.vertex_duals.len(), 1);
    }

    #[test]
    fn fingerprint_separates_bitwise_differences() {
        let s = snapshot();
        assert_eq!(s.fingerprint(), snapshot().fingerprint(), "deterministic");
        let mut t = snapshot();
        t.vertex_duals[0].value = f64::from_bits(2.0f64.to_bits() + 1);
        assert_ne!(s.fingerprint(), t.fingerprint(), "one ULP must change the fingerprint");
        let mut u = snapshot();
        u.odd_sets[0].members.pop();
        assert_ne!(s.fingerprint(), u.fingerprint());
        assert_ne!(
            DualSnapshot::empty(0.1, 2).fingerprint(),
            DualSnapshot::empty(0.1, 3).fingerprint()
        );
    }

    #[test]
    fn normalize_sorts_both_tables() {
        let mut s = snapshot();
        s.vertex_duals.swap(0, 1);
        s.normalize();
        assert_eq!(s.vertex_duals[0].vertex, 0);
        assert!(!s.is_empty());
        assert!(DualSnapshot::empty(0.1, 2).is_empty());
    }
}
