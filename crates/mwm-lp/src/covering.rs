//! The fractional covering framework (Theorem 5, Corollary 6).
//!
//! We solve the decision problem `∃? x ∈ P : Ax ≥ c` for a packing-style
//! polytope `P` with `0 ≤ Ax ≤ ρ·c` for all `x ∈ P`. The algorithm maintains a
//! point `x ∈ P` (implicitly, as a convex combination of oracle answers),
//! tracks the coverage vector `(Ax)_ℓ / c_ℓ`, and repeatedly asks an oracle to
//! (approximately) maximize `uᵀAx̃` over `P` for the exponential multipliers
//! `u_ℓ = exp(-α·(Ax)_ℓ/c_ℓ)/c_ℓ`. Corollary 6 allows the relaxed guarantee
//! `uᵀAx̃ ≥ (1-ε/2)·uᵀc`; if no such `x̃` exists the multipliers themselves are
//! an infeasibility certificate (`yᵀAx < yᵀc` for all `x ∈ P`).
//!
//! The implementation is generic over an oracle so that both the synthetic
//! explicit LPs (experiment E10) and the matching relaxation of `mwm-core`
//! (whose "constraints" are edges and whose oracle is the MicroOracle) can
//! reuse it unchanged.

/// A candidate returned by a covering oracle.
#[derive(Clone, Debug)]
pub struct OracleCandidate<T> {
    /// The nonzero entries of `A x̃`, as `(constraint index, value)` pairs.
    pub coverage: Vec<(usize, f64)>,
    /// Caller-defined payload describing `x̃` (e.g. the sparse solution itself),
    /// so the final answer can be reconstructed as a convex combination.
    pub payload: T,
}

/// A problem instance consumed by [`solve_covering`].
pub trait CoveringInstance {
    /// Payload type attached to oracle candidates.
    type Payload;

    /// Number of covering constraints `M`.
    fn num_constraints(&self) -> usize;

    /// Right-hand side `c_ℓ > 0`.
    fn rhs(&self, l: usize) -> f64;

    /// Width bound `ρ ≥ max_{x∈P} max_ℓ (Ax)_ℓ/c_ℓ` (used for the step size).
    fn width(&self) -> f64;

    /// The (relaxed) oracle of Corollary 6: given multipliers `u ≥ 0` return a
    /// candidate with `uᵀAx̃ ≥ (1-ε/2)·uᵀc`, or `None` if no point of `P`
    /// achieves it (which certifies infeasibility of the covering system).
    fn oracle(&mut self, u: &[f64], eps: f64) -> Option<OracleCandidate<Self::Payload>>;
}

/// Parameters of the covering solver.
#[derive(Clone, Copy, Debug)]
pub struct CoveringParams {
    /// Target accuracy ε: the solver stops when `λ ≥ 1-3ε`.
    pub eps: f64,
    /// Hard cap on oracle invocations (a safety net over the Theorem 5 bound).
    pub max_iterations: usize,
}

impl Default for CoveringParams {
    fn default() -> Self {
        CoveringParams { eps: 0.1, max_iterations: 100_000 }
    }
}

/// Why the solver stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoveringOutcome {
    /// `λ ≥ 1-3ε`: the maintained `x` is an approximately feasible covering point.
    Feasible,
    /// The oracle failed: the final multipliers certify infeasibility.
    Infeasible,
    /// The iteration cap was reached before either of the above.
    IterationLimit,
}

/// The result of a covering run.
#[derive(Clone, Debug)]
pub struct CoveringSolution<T> {
    /// Termination reason.
    pub outcome: CoveringOutcome,
    /// Final `λ = min_ℓ (Ax)_ℓ/c_ℓ`.
    pub lambda: f64,
    /// Final coverage ratios `(Ax)_ℓ/c_ℓ` per constraint.
    pub coverage_ratio: Vec<f64>,
    /// The convex combination defining `x`: `(σ_t, payload_t)` of every
    /// accepted oracle answer plus the initial payload at index 0 (weight of
    /// the initial point is `1 - Σ σ_t` applied multiplicatively).
    pub steps: Vec<(f64, T)>,
    /// Number of oracle invocations that returned a candidate.
    pub iterations: usize,
    /// The multipliers at termination (infeasibility certificate when
    /// `outcome == Infeasible`).
    pub final_multipliers: Vec<f64>,
}

/// Runs the fractional covering framework.
///
/// * `initial_coverage` — the vector `A x₀` of an initial point `x₀ ∈ P`
///   satisfying `A x₀ ≥ (1-ε₀)c` for some `ε₀ < 1` (condition (d5)).
/// * `initial_payload` — payload describing `x₀`.
pub fn solve_covering<I: CoveringInstance>(
    instance: &mut I,
    initial_coverage: Vec<f64>,
    initial_payload: I::Payload,
    params: &CoveringParams,
) -> CoveringSolution<I::Payload>
where
    I::Payload: Clone,
{
    let m = instance.num_constraints();
    assert_eq!(initial_coverage.len(), m, "initial coverage must have one entry per constraint");
    let eps = params.eps;
    assert!(eps > 0.0 && eps < 0.5);
    let rho = instance.width().max(1.0);

    // Coverage ratios (Ax)_l / c_l, maintained incrementally.
    let mut ratio: Vec<f64> = (0..m)
        .map(|l| {
            let c = instance.rhs(l);
            assert!(c > 0.0, "covering RHS must be positive");
            initial_coverage[l] / c
        })
        .collect();
    let mut steps: Vec<(f64, I::Payload)> = vec![(1.0, initial_payload)];
    let mut u = vec![0.0f64; m];
    let mut iterations = 0usize;

    let lambda_of = |ratio: &[f64]| ratio.iter().copied().fold(f64::INFINITY, f64::min);
    let mut lambda = lambda_of(&ratio);

    loop {
        if lambda >= 1.0 - 3.0 * eps {
            return CoveringSolution {
                outcome: CoveringOutcome::Feasible,
                lambda,
                coverage_ratio: ratio,
                steps,
                iterations,
                final_multipliers: u,
            };
        }
        if iterations >= params.max_iterations {
            return CoveringSolution {
                outcome: CoveringOutcome::IterationLimit,
                lambda,
                coverage_ratio: ratio,
                steps,
                iterations,
                final_multipliers: u,
            };
        }
        // Phase parameters (Theorem 5): alpha = O(lambda^-1 eps^-1 ln(M/eps)).
        // The constant in front only affects the convergence rate, never the
        // validity of the output (feasibility is certified by the lambda test,
        // infeasibility by the oracle's failure), so we use the practical 1.0.
        let lambda_t = lambda.max(1e-9);
        let alpha = (1.0 / (lambda_t * eps)) * ((m.max(2) as f64) / eps).ln();
        // Multipliers, normalised so the smallest exponent is 0 (scaling u by a
        // positive constant does not change the oracle's problem).
        for l in 0..m {
            let shifted = -(alpha * (ratio[l] - lambda)).min(700.0);
            u[l] = shifted.exp() / instance.rhs(l);
        }
        match instance.oracle(&u, eps) {
            None => {
                return CoveringSolution {
                    outcome: CoveringOutcome::Infeasible,
                    lambda,
                    coverage_ratio: ratio,
                    steps,
                    iterations,
                    final_multipliers: u,
                };
            }
            Some(cand) => {
                iterations += 1;
                let sigma = (eps / (2.0 * alpha * rho)).min(1.0);
                // x <- (1-sigma) x + sigma x_tilde, applied to the coverage ratios.
                for r in ratio.iter_mut() {
                    *r *= 1.0 - sigma;
                }
                for &(l, v) in &cand.coverage {
                    ratio[l] += sigma * v / instance.rhs(l);
                }
                // Record the step; earlier steps implicitly shrink by (1-sigma).
                for (w, _) in steps.iter_mut() {
                    *w *= 1.0 - sigma;
                }
                steps.push((sigma, cand.payload));
                lambda = lambda_of(&ratio);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::{BoxBudgetPolytope, ExplicitCovering};

    /// Feasible toy instance: cover two elements with two sets.
    #[test]
    fn simple_feasible_cover() {
        // Constraints: x1 >= 1, x2 >= 1; polytope: 0 <= x <= 1 (budget loose).
        let rows = vec![vec![(0, 1.0)], vec![(1, 1.0)]];
        let mut inst = ExplicitCovering::new(
            rows,
            vec![1.0, 1.0],
            BoxBudgetPolytope { upper: vec![1.0, 1.0], cost: vec![1.0, 1.0], budget: 10.0 },
        );
        let init = vec![0.5, 0.5]; // x0 = (0.5, 0.5)
        let sol = solve_covering(
            &mut inst,
            init,
            vec![(0, 0.5), (1, 0.5)],
            &CoveringParams { eps: 0.05, max_iterations: 60_000 },
        );
        assert_eq!(sol.outcome, CoveringOutcome::Feasible);
        assert!(sol.lambda >= 1.0 - 0.15);
    }

    #[test]
    fn infeasible_system_is_detected() {
        // Constraint x1 + x2 >= 10 but the box only allows x <= 1 each.
        let rows = vec![vec![(0, 1.0), (1, 1.0)]];
        let mut inst = ExplicitCovering::new(
            rows,
            vec![10.0],
            BoxBudgetPolytope { upper: vec![1.0, 1.0], cost: vec![1.0, 1.0], budget: 10.0 },
        );
        let sol = solve_covering(
            &mut inst,
            vec![1.0],
            vec![(0, 0.5), (1, 0.5)],
            &CoveringParams { eps: 0.1, max_iterations: 10_000 },
        );
        assert_eq!(sol.outcome, CoveringOutcome::Infeasible);
    }

    #[test]
    fn budget_constrained_cover_requires_large_enough_budget() {
        // Covering 3 elements each needing its own variable, but the budget only
        // pays for 1.5 units => infeasible; with budget 3 => feasible.
        let rows = vec![vec![(0, 1.0)], vec![(1, 1.0)], vec![(2, 1.0)]];
        let c = vec![1.0, 1.0, 1.0];
        let tight = BoxBudgetPolytope { upper: vec![1.0; 3], cost: vec![1.0; 3], budget: 1.5 };
        let loose = BoxBudgetPolytope { upper: vec![1.0; 3], cost: vec![1.0; 3], budget: 3.0 };
        let mut inst_tight = ExplicitCovering::new(rows.clone(), c.clone(), tight);
        let mut inst_loose = ExplicitCovering::new(rows, c, loose);
        let sol_tight = solve_covering(
            &mut inst_tight,
            vec![0.5, 0.5, 0.5],
            vec![],
            &CoveringParams { eps: 0.05, max_iterations: 60_000 },
        );
        assert_ne!(sol_tight.outcome, CoveringOutcome::Feasible);
        let sol_loose = solve_covering(
            &mut inst_loose,
            vec![0.5, 0.5, 0.5],
            vec![],
            &CoveringParams { eps: 0.05, max_iterations: 60_000 },
        );
        assert_eq!(sol_loose.outcome, CoveringOutcome::Feasible);
    }

    #[test]
    fn step_weights_form_a_convex_combination() {
        let rows = vec![vec![(0, 1.0), (1, 0.5)], vec![(1, 1.0)]];
        let mut inst = ExplicitCovering::new(
            rows,
            vec![1.0, 1.0],
            BoxBudgetPolytope { upper: vec![1.0, 1.0], cost: vec![1.0, 1.0], budget: 5.0 },
        );
        let sol = solve_covering(
            &mut inst,
            vec![0.3, 0.3],
            vec![(0, 0.3), (1, 0.3)],
            &CoveringParams { eps: 0.08, max_iterations: 60_000 },
        );
        assert_eq!(sol.outcome, CoveringOutcome::Feasible);
        let total: f64 = sol.steps.iter().map(|(w, _)| w).sum();
        assert!((total - 1.0).abs() < 1e-6, "step weights sum to {total}");
        assert!(sol.steps.iter().all(|&(w, _)| w >= 0.0));
    }

    #[test]
    fn iteration_count_grows_with_width() {
        // The wide instance has one constraint whose coverage per oracle answer
        // can be 10x its requirement, which caps the step size at sigma ~ 1/rho
        // and slows progress on the *other* (bottleneck) constraint.
        let narrow_rows = vec![vec![(0, 1.0)], vec![(1, 1.0)]];
        let wide_rows = vec![vec![(0, 10.0)], vec![(1, 1.0)]];
        let polytope =
            BoxBudgetPolytope { upper: vec![1.0, 1.0], cost: vec![1.0, 1.0], budget: 1e6 };
        let params = CoveringParams { eps: 0.1, max_iterations: 400_000 };
        let mut narrow = ExplicitCovering::new(narrow_rows, vec![1.0, 1.0], polytope.clone());
        let mut wide = ExplicitCovering::new(wide_rows, vec![1.0, 1.0], polytope);
        let sol_narrow = solve_covering(&mut narrow, vec![0.2, 0.2], vec![], &params);
        let sol_wide = solve_covering(&mut wide, vec![2.0, 0.2], vec![], &params);
        assert_eq!(sol_narrow.outcome, CoveringOutcome::Feasible);
        assert_eq!(sol_wide.outcome, CoveringOutcome::Feasible);
        assert!(
            sol_wide.iterations > sol_narrow.iterations,
            "wide {} vs narrow {}",
            sol_wide.iterations,
            sol_narrow.iterations
        );
    }
}
