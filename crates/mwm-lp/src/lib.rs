//! Fractional covering / packing machinery (the Plotkin–Shmoys–Tardos style
//! multiplicative-weights framework the paper builds on) and the dual-primal
//! bookkeeping of Section 2.
//!
//! * [`covering`] — the fractional *covering* solver of Theorem 5 with the
//!   relaxed oracle of Corollary 6: phases, exponential multipliers
//!   `u_ℓ = exp(-α (Ax)_ℓ / c_ℓ)/c_ℓ`, convex-combination updates, early
//!   stopping at `λ ≥ 1-3ε`, and infeasibility certificates.
//! * [`packing`] — the fractional *packing* solver of Theorem 7 with the
//!   relaxed oracle of Corollary 8 (used by the inner loop of Theorem 4).
//! * [`explicit`] — explicit sparse-matrix instances over box-with-budget
//!   polytopes, with built-in exact linear-maximization oracles; these are the
//!   workloads of experiment E10 and the unit tests of the solvers.
//! * [`width`] — width parameters `ρ = max_{x∈P} max_ℓ (Ax)_ℓ / c_ℓ` of
//!   explicit instances (experiment E7 compares the width of the standard
//!   matching dual LP2 against the penalty relaxations LP4/LP5).
//! * [`dual_primal`] — the adaptivity ledger of the dual-primal framework:
//!   how many *rounds of data access* versus *oracle iterations* an execution
//!   used (Figure 1 / Corollary 2), shared by the solver and the baselines.
//! * [`duals`] — the portable [`DualSnapshot`] export/import format for dual
//!   points, used to warm-start one solve from the previous one (the dynamic
//!   matching subsystem's epoch chain).
//! * [`fixed`] — the fixed-point weight lattice over the `B/W*` rescale:
//!   weights as exact `u64` bit-pattern keys plus a [`FixedLattice`] of
//!   precomputed class boundaries/weights, the form the batch (slice)
//!   kernels classify and divide by without per-edge `ln`/`powi`.

pub mod covering;
pub mod dual_primal;
pub mod duals;
pub mod explicit;
pub mod fixed;
pub mod packing;
pub mod width;

pub use covering::{
    solve_covering, CoveringInstance, CoveringOutcome, CoveringParams, CoveringSolution,
    OracleCandidate,
};
pub use dual_primal::AdaptivityLedger;
pub use duals::{DualSnapshot, OddSetDual, VertexDual};
pub use explicit::{BoxBudgetPolytope, ExplicitCovering, ExplicitPacking};
pub use fixed::{key_weight, weight_key, FixedLattice};
pub use packing::{solve_packing, PackingInstance, PackingOutcome, PackingParams, PackingSolution};
pub use width::{covering_width, packing_width};
