//! Adaptivity accounting for dual-primal executions.
//!
//! The central quantitative claim of the paper (Figure 1, Corollary 2, and the
//! `O(p/ε)`-rounds statement of Theorem 15) is the *separation* between
//!
//! * **adaptive rounds** — moments at which the algorithm goes back to the
//!   input data (builds fresh sketches / deferred sparsifiers), and
//! * **oracle iterations** — multiplier updates performed purely on the small
//!   in-memory state between two rounds (refinement of already-built deferred
//!   sparsifiers).
//!
//! The ledger below is threaded through the solver and the baselines so that
//! experiments E1/E4/E5 can report both quantities (and the β-raises of
//! Algorithm 2 Step 6) from the same source of truth.

/// A log of the adaptivity structure of one execution.
#[derive(Clone, Debug, Default)]
pub struct AdaptivityLedger {
    rounds: usize,
    oracle_iterations: usize,
    sparsifiers_built: usize,
    beta_raises: usize,
    /// Oracle iterations per round (index = round at which they happened).
    per_round_iterations: Vec<usize>,
}

impl AdaptivityLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one round of data access (sketching / sampling).
    pub fn record_round(&mut self) {
        self.rounds += 1;
        self.per_round_iterations.push(0);
    }

    /// Records one oracle iteration (multiplier update without data access).
    pub fn record_oracle_iteration(&mut self) {
        self.oracle_iterations += 1;
        if let Some(last) = self.per_round_iterations.last_mut() {
            *last += 1;
        } else {
            self.per_round_iterations.push(1);
            self.rounds = self.rounds.max(1);
        }
    }

    /// Records the construction of one deferred sparsifier.
    pub fn record_sparsifier(&mut self) {
        self.sparsifiers_built += 1;
    }

    /// Records a raise of the dual objective bound β (Algorithm 2 Step 6).
    pub fn record_beta_raise(&mut self) {
        self.beta_raises += 1;
    }

    /// Number of adaptive rounds so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Number of oracle iterations so far.
    pub fn oracle_iterations(&self) -> usize {
        self.oracle_iterations
    }

    /// Number of deferred sparsifiers built.
    pub fn sparsifiers_built(&self) -> usize {
        self.sparsifiers_built
    }

    /// Number of β raises.
    pub fn beta_raises(&self) -> usize {
        self.beta_raises
    }

    /// Oracle iterations grouped by round.
    pub fn per_round_iterations(&self) -> &[usize] {
        &self.per_round_iterations
    }

    /// The adaptivity ratio `oracle_iterations / rounds` — the factor by which
    /// the deferred machinery reduces data access relative to a naive
    /// primal-dual loop (which would need one round per iteration).
    pub fn adaptivity_ratio(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.oracle_iterations as f64 / self.rounds as f64
        }
    }

    /// Merges another ledger into this one (used when a run is split across
    /// phases, e.g. initial solution + main loop).
    pub fn merge(&mut self, other: &AdaptivityLedger) {
        self.rounds += other.rounds;
        self.oracle_iterations += other.oracle_iterations;
        self.sparsifiers_built += other.sparsifiers_built;
        self.beta_raises += other.beta_raises;
        self.per_round_iterations.extend_from_slice(&other.per_round_iterations);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let mut ledger = AdaptivityLedger::new();
        ledger.record_round();
        ledger.record_sparsifier();
        ledger.record_oracle_iteration();
        ledger.record_oracle_iteration();
        ledger.record_round();
        ledger.record_oracle_iteration();
        ledger.record_beta_raise();
        assert_eq!(ledger.rounds(), 2);
        assert_eq!(ledger.oracle_iterations(), 3);
        assert_eq!(ledger.sparsifiers_built(), 1);
        assert_eq!(ledger.beta_raises(), 1);
        assert_eq!(ledger.per_round_iterations(), &[2, 1]);
        assert!((ledger.adaptivity_ratio() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn iteration_without_round_opens_an_implicit_round() {
        let mut ledger = AdaptivityLedger::new();
        ledger.record_oracle_iteration();
        assert_eq!(ledger.rounds(), 1);
        assert_eq!(ledger.oracle_iterations(), 1);
    }

    #[test]
    fn merge_combines_ledgers() {
        let mut a = AdaptivityLedger::new();
        a.record_round();
        a.record_oracle_iteration();
        let mut b = AdaptivityLedger::new();
        b.record_round();
        b.record_round();
        b.record_beta_raise();
        a.merge(&b);
        assert_eq!(a.rounds(), 3);
        assert_eq!(a.oracle_iterations(), 1);
        assert_eq!(a.beta_raises(), 1);
    }

    #[test]
    fn empty_ledger_has_zero_ratio() {
        let ledger = AdaptivityLedger::new();
        assert_eq!(ledger.adaptivity_ratio(), 0.0);
    }
}
